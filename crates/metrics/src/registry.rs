//! Sessions, per-rank registries, and the recording fast path.
//!
//! Mirrors the `tc-trace` discipline exactly:
//!
//! - a **global gate** ([`enabled`], one relaxed atomic load) makes
//!   every instrumentation point free when no session is live;
//! - a **session** ([`MetricsSession`]) owns per-rank registries
//!   behind individually lockable mutexes;
//! - a **thread-local binding** ([`RankGuard`]) routes this thread's
//!   [`counter_add`]/[`gauge_max`]/[`hist_record`] calls to its
//!   rank's registry.
//!
//! Binding is explicit — a session never captures values from
//! threads that were not registered against it — so concurrent
//! universes in one process (the normal state of `cargo test`)
//! cannot contaminate each other's metrics.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::Log2Histogram;
use crate::snapshot::{MetricValue, MetricsSnapshot};

/// Count of live sessions; the recording gate.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Total values ever recorded in this process (test probe: asserts
/// that disabled paths stay bypassed).
static VALUES_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Whether any metrics session is currently live. This is the single
/// atomic load every instrumentation point pays when metrics are off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) != 0
}

/// Process-wide count of recorded values. Monotone; used by tests to
/// prove the registry is bypassed when metrics are disabled.
pub fn values_recorded_total() -> u64 {
    VALUES_RECORDED.load(Ordering::Relaxed)
}

/// One typed metric slot in a rank's registry.
enum Slot {
    Counter(u64),
    Gauge(u64),
    Hist(Box<Log2Histogram>),
    /// Memory scope accounting: live bytes and their high-water mark.
    Mem {
        cur: u64,
        peak: u64,
    },
}

/// One rank's registry: a mutex-protected name → slot map. The
/// owning thread is the only writer, so the lock is uncontended.
struct RankRegistry {
    slots: Mutex<BTreeMap<&'static str, Slot>>,
}

struct SinkInner {
    lanes: Mutex<HashMap<usize, Arc<RankRegistry>>>,
}

impl SinkInner {
    fn lane(&self, rank: usize) -> Arc<RankRegistry> {
        let mut lanes = self.lanes.lock().expect("metrics lanes lock");
        Arc::clone(
            lanes
                .entry(rank)
                .or_insert_with(|| Arc::new(RankRegistry { slots: Mutex::new(BTreeMap::new()) })),
        )
    }
}

thread_local! {
    static LANE: RefCell<Option<LocalLane>> = const { RefCell::new(None) };
}

struct LocalLane {
    lane: Arc<RankRegistry>,
}

/// A live metrics session. Dropping (or [`MetricsSession::finish`]ing)
/// it closes the gate again (when no other session is live).
pub struct MetricsSession {
    inner: Arc<SinkInner>,
}

impl MetricsSession {
    /// Starts a session and opens the recording gate.
    pub fn begin() -> Self {
        let inner = Arc::new(SinkInner { lanes: Mutex::new(HashMap::new()) });
        ACTIVE_SESSIONS.fetch_add(1, Ordering::SeqCst);
        Self { inner }
    }

    /// A cloneable handle for wiring the session into rank runtimes
    /// (e.g. `tc_mps::UniverseConfig::metrics`).
    pub fn handle(&self) -> MetricsHandle {
        MetricsHandle { inner: Arc::clone(&self.inner) }
    }

    /// Ends the session and returns everything it recorded.
    pub fn finish(self) -> MetricsSnapshot {
        let inner = Arc::clone(&self.inner);
        drop(self); // closes the gate before draining
        drain(&inner)
    }
}

impl Drop for MetricsSession {
    fn drop(&mut self) {
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for MetricsSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSession").finish_non_exhaustive()
    }
}

/// Cloneable, thread-safe reference to a session's registries.
#[derive(Clone)]
pub struct MetricsHandle {
    inner: Arc<SinkInner>,
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle").finish_non_exhaustive()
    }
}

impl MetricsHandle {
    /// Binds the calling thread to `rank`'s registry until the
    /// returned guard is dropped.
    pub fn register_rank(&self, rank: usize) -> RankGuard {
        let lane = self.inner.lane(rank);
        let prev = LANE.with(|l| l.borrow_mut().replace(LocalLane { lane }));
        RankGuard { prev }
    }

    /// Copies everything recorded **so far** without ending the
    /// session: the live-scrape path of long-lived services (the
    /// `metrics` query of `tc-serve`). Each rank lane is locked only
    /// for the duration of its copy, so recording threads are never
    /// blocked for long.
    pub fn snapshot(&self) -> MetricsSnapshot {
        drain(&self.inner)
    }
}

/// Copies every lane of `inner` into a snapshot.
fn drain(inner: &SinkInner) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    let lanes = inner.lanes.lock().expect("metrics lanes lock");
    let mut ranks: Vec<usize> = lanes.keys().copied().collect();
    ranks.sort_unstable();
    for r in ranks {
        let slots = lanes[&r].slots.lock().expect("metrics slots lock");
        for (name, slot) in slots.iter() {
            let value = match slot {
                Slot::Counter(v) => MetricValue::Counter(*v),
                Slot::Gauge(v) => MetricValue::Gauge(*v),
                Slot::Hist(h) => MetricValue::Hist((**h).clone()),
                // A memory scope exports its high-water mark; the
                // live count is transient bookkeeping.
                Slot::Mem { peak, .. } => MetricValue::Gauge(*peak),
            };
            snap.insert(r, name.to_string(), value);
        }
    }
    snap
}

/// Clears the thread's registry binding on drop (restoring any
/// previous binding, so nested universes behave).
pub struct RankGuard {
    prev: Option<LocalLane>,
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        LANE.with(|l| {
            *l.borrow_mut() = self.prev.take();
        });
    }
}

impl std::fmt::Debug for RankGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankGuard").finish_non_exhaustive()
    }
}

fn with_slot(name: &'static str, f: impl FnOnce(&mut Slot), mk: impl FnOnce() -> Slot) {
    LANE.with(|l| {
        if let Some(local) = l.borrow().as_ref() {
            let mut slots = local.lane.slots.lock().expect("metrics slots lock");
            f(slots.entry(name).or_insert_with(mk));
            VALUES_RECORDED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Adds `v` to the counter `name`. The fast path when metrics are
/// off is a single relaxed atomic load.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    counter_add_slow(name, v);
}

#[cold]
fn counter_add_slow(name: &'static str, v: u64) {
    with_slot(
        name,
        |s| {
            if let Slot::Counter(c) = s {
                *c = c.saturating_add(v);
            }
        },
        || Slot::Counter(0),
    );
}

/// Sets the gauge `name` to `v` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    gauge_slow(name, v, false);
}

/// Raises the gauge `name` to `v` if larger (high-water semantics).
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    gauge_slow(name, v, true);
}

#[cold]
fn gauge_slow(name: &'static str, v: u64, max: bool) {
    with_slot(
        name,
        |s| {
            if let Slot::Gauge(g) = s {
                *g = if max { (*g).max(v) } else { v };
            }
        },
        || Slot::Gauge(0),
    );
}

/// Records one sample into the log₂ histogram `name`.
#[inline]
pub fn hist_record(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    hist_record_slow(name, v);
}

#[cold]
fn hist_record_slow(name: &'static str, v: u64) {
    with_slot(
        name,
        |s| {
            if let Slot::Hist(h) = s {
                h.record(v);
            }
        },
        || Slot::Hist(Box::default()),
    );
}

/// Ensures the histogram `name` exists (empty) without recording a
/// sample, so exports show the series present-and-zero before its
/// first observation.
#[inline]
pub fn hist_touch(name: &'static str) {
    if !enabled() {
        return;
    }
    hist_touch_slow(name);
}

#[cold]
fn hist_touch_slow(name: &'static str) {
    with_slot(name, |_| {}, || Slot::Hist(Box::default()));
}

/// Accounts `bytes` as newly live under the memory scope `name`,
/// updating its high-water mark. Pair with [`mem_release`] (or use
/// [`crate::MemScope`], which does both).
#[inline]
pub fn mem_acquire(name: &'static str, bytes: u64) {
    if !enabled() {
        return;
    }
    mem_slow(name, bytes, true);
}

/// Releases `bytes` previously accounted with [`mem_acquire`].
#[inline]
pub fn mem_release(name: &'static str, bytes: u64) {
    if !enabled() {
        return;
    }
    mem_slow(name, bytes, false);
}

#[cold]
fn mem_slow(name: &'static str, bytes: u64, acquire: bool) {
    with_slot(
        name,
        |s| {
            if let Slot::Mem { cur, peak } = s {
                if acquire {
                    *cur = cur.saturating_add(bytes);
                    *peak = (*peak).max(*cur);
                } else {
                    *cur = cur.saturating_sub(bytes);
                }
            }
        },
        || Slot::Mem { cur: 0, peak: 0 },
    );
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // Session tests share process-global state (the gate); serialize
    // them so assertions about enabled() don't race.
    pub(crate) static SESSION_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn locked() -> std::sync::MutexGuard<'static, ()> {
        SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _l = locked();
        assert!(!enabled());
        let before = values_recorded_total();
        counter_add("x", 1);
        gauge_set("g", 2);
        gauge_max("g", 3);
        hist_record("h", 4);
        mem_acquire("m", 5);
        mem_release("m", 5);
        assert_eq!(values_recorded_total(), before);
    }

    #[test]
    fn unbound_threads_record_nothing_even_when_enabled() {
        let _l = locked();
        let session = MetricsSession::begin();
        assert!(enabled());
        let before = values_recorded_total();
        counter_add("x", 1);
        assert_eq!(values_recorded_total(), before);
        let snap = session.finish();
        assert!(snap.ranks().is_empty());
        assert!(!enabled());
    }

    #[test]
    fn bound_thread_records_all_metric_kinds() {
        let _l = locked();
        let session = MetricsSession::begin();
        let handle = session.handle();
        {
            let _g = handle.register_rank(2);
            counter_add("ops", 10);
            counter_add("ops", 5);
            gauge_set("size", 100);
            gauge_set("size", 90);
            gauge_max("hwm", 7);
            gauge_max("hwm", 3);
            hist_record("lat", 1);
            hist_record("lat", 1000);
            mem_acquire("buf", 64);
            mem_acquire("buf", 64);
            mem_release("buf", 64);
            mem_acquire("buf", 32);
            mem_release("buf", 96);
        }
        let snap = session.finish();
        assert_eq!(snap.ranks(), vec![2]);
        assert_eq!(snap.counter(2, "ops"), Some(15));
        assert_eq!(snap.gauge(2, "size"), Some(90));
        assert_eq!(snap.gauge(2, "hwm"), Some(7));
        let h = snap.hist(2, "lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1001);
        // Peak was 128 live bytes, even though everything was freed.
        assert_eq!(snap.gauge(2, "buf"), Some(128));
    }

    #[test]
    fn hist_touch_preseeds_empty_histogram() {
        let _l = locked();
        let session = MetricsSession::begin();
        let handle = session.handle();
        {
            let _g = handle.register_rank(0);
            hist_touch("lat.touched");
        }
        let snap = session.finish();
        let h = snap.hist(0, "lat.touched").expect("touched hist present");
        assert_eq!((h.count(), h.sum()), (0, 0));
    }

    #[test]
    fn guard_restores_previous_binding() {
        let _l = locked();
        let session = MetricsSession::begin();
        let handle = session.handle();
        let _outer = handle.register_rank(0);
        {
            let _inner = handle.register_rank(1);
            counter_add("c", 1);
        }
        counter_add("c", 10);
        let snap = session.finish();
        assert_eq!(snap.counter(1, "c"), Some(1));
        assert_eq!(snap.counter(0, "c"), Some(10));
    }

    #[test]
    fn cross_thread_ranks_do_not_mix() {
        let _l = locked();
        let session = MetricsSession::begin();
        let handle = session.handle();
        std::thread::scope(|s| {
            for r in 0..4usize {
                let h = handle.clone();
                s.spawn(move || {
                    let _g = h.register_rank(r);
                    counter_add("ops", r as u64 + 1);
                });
            }
        });
        let snap = session.finish();
        assert_eq!(snap.ranks(), vec![0, 1, 2, 3]);
        for r in 0..4usize {
            assert_eq!(snap.counter(r, "ops"), Some(r as u64 + 1));
        }
    }
}
