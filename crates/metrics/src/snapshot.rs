//! Schema-versioned metrics snapshots.
//!
//! A snapshot is what a finished [`crate::MetricsSession`] drains
//! into: per-rank `name → value` maps plus a schema tag, with a
//! cross-rank [`MetricsSnapshot::merged`] view (counters sum, gauges
//! take the max, histograms merge) that subsumes the ad-hoc
//! `RankMetrics`/`Timings` aggregation the repo used before.
//!
//! The JSON wire format round-trips exactly: `u64` values are
//! emitted as integer tokens and parsed back without a float detour.

use std::collections::BTreeMap;

use crate::histogram::{Log2Histogram, NUM_BUCKETS};
use crate::json::{self, Value};

/// Wire-format version tag; bump on breaking layout changes.
pub const SCHEMA: &str = "tc-metrics-v1";

/// One exported metric value.
///
/// `Hist` dwarfs the scalar variants (64 fixed buckets), but values
/// live one-per-name in snapshot maps — never in dense arrays — so
/// the size skew costs nothing worth an indirection.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// Monotone sum.
    Counter(u64),
    /// Point-in-time (or high-water) level.
    Gauge(u64),
    /// Log₂-bucketed sample distribution.
    Hist(Log2Histogram),
}

/// Everything one metrics session recorded, by rank and name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    ranks: BTreeMap<usize, BTreeMap<String, MetricValue>>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) one metric value.
    pub fn insert(&mut self, rank: usize, name: String, value: MetricValue) {
        self.ranks.entry(rank).or_default().insert(name, value);
    }

    /// Ranks present, ascending.
    pub fn ranks(&self) -> Vec<usize> {
        self.ranks.keys().copied().collect()
    }

    /// All metrics of one rank, by name.
    pub fn rank(&self, rank: usize) -> Option<&BTreeMap<String, MetricValue>> {
        self.ranks.get(&rank)
    }

    /// The counter `name` on `rank`, if recorded as a counter.
    pub fn counter(&self, rank: usize, name: &str) -> Option<u64> {
        match self.ranks.get(&rank)?.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name` on `rank`, if recorded as a gauge.
    pub fn gauge(&self, rank: usize, name: &str) -> Option<u64> {
        match self.ranks.get(&rank)?.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name` on `rank`, if recorded as a histogram.
    pub fn hist(&self, rank: usize, name: &str) -> Option<&Log2Histogram> {
        match self.ranks.get(&rank)?.get(name)? {
            MetricValue::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Cross-rank aggregation: counters sum, gauges take the max
    /// (high-water across ranks), histograms merge. Metrics that
    /// appear with different types on different ranks keep the first
    /// type seen and ignore mismatched occurrences.
    pub fn merged(&self) -> BTreeMap<String, MetricValue> {
        let mut out: BTreeMap<String, MetricValue> = BTreeMap::new();
        for per_rank in self.ranks.values() {
            for (name, value) in per_rank {
                match (out.get_mut(name.as_str()), value) {
                    (None, v) => {
                        out.insert(name.clone(), v.clone());
                    }
                    (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => {
                        *a = (*a).max(*b);
                    }
                    (Some(MetricValue::Hist(a)), MetricValue::Hist(b)) => a.merge(b),
                    _ => {}
                }
            }
        }
        out
    }

    /// Sum of the counter `name` across all ranks (`None` if absent
    /// everywhere).
    pub fn counter_total(&self, name: &str) -> Option<u64> {
        match self.merged().get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// All merged counters, by name — the deterministic-quantity view
    /// that run records and `benchdiff` consume.
    pub fn merged_counters(&self) -> BTreeMap<String, u64> {
        self.merged()
            .into_iter()
            .filter_map(|(name, v)| match v {
                MetricValue::Counter(c) => Some((name, c)),
                _ => None,
            })
            .collect()
    }

    /// Serializes to the `tc-metrics-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\",\"ranks\":{");
        let mut first_rank = true;
        for (rank, metrics) in &self.ranks {
            if !first_rank {
                out.push(',');
            }
            first_rank = false;
            out.push_str(&format!("\"{rank}\":{{"));
            let mut first = true;
            for (name, value) in metrics {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                json::escape_into(&mut out, name);
                out.push_str("\":");
                write_value(&mut out, value);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses a `tc-metrics-v1` JSON document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("<missing>");
        if schema != SCHEMA {
            return Err(format!("unsupported metrics schema '{schema}' (want '{SCHEMA}')"));
        }
        let mut snap = MetricsSnapshot::new();
        let ranks =
            doc.get("ranks").and_then(Value::as_obj).ok_or("snapshot missing 'ranks' object")?;
        for (rank_key, metrics) in ranks {
            let rank: usize = rank_key.parse().map_err(|_| format!("bad rank key '{rank_key}'"))?;
            let metrics = metrics.as_obj().ok_or("rank entry is not an object")?;
            for (name, value) in metrics {
                snap.insert(rank, name.clone(), parse_value(name, value)?);
            }
        }
        Ok(snap)
    }
}

fn write_value(out: &mut String, value: &MetricValue) {
    match value {
        MetricValue::Counter(v) => out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}")),
        MetricValue::Gauge(v) => out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}")),
        MetricValue::Hist(h) => {
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0)
            ));
            let mut first = true;
            for (i, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{i},{n}]"));
            }
            out.push_str("]}");
        }
    }
}

fn parse_value(name: &str, value: &Value) -> Result<MetricValue, String> {
    let kind = value
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("metric '{name}': missing type"))?;
    let want_u64 = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("metric '{name}': missing/invalid '{key}'"))
    };
    match kind {
        "counter" => Ok(MetricValue::Counter(want_u64("value")?)),
        "gauge" => Ok(MetricValue::Gauge(want_u64("value")?)),
        "hist" => {
            let sum = want_u64("sum")?;
            let min = want_u64("min")?;
            let max = want_u64("max")?;
            let mut buckets = [0u64; NUM_BUCKETS];
            let entries = value
                .get("buckets")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("metric '{name}': missing buckets"))?;
            for entry in entries {
                let pair = entry.as_arr().ok_or_else(|| format!("metric '{name}': bad bucket"))?;
                let (Some(i), Some(n)) =
                    (pair.first().and_then(Value::as_u64), pair.get(1).and_then(Value::as_u64))
                else {
                    return Err(format!("metric '{name}': bad bucket entry"));
                };
                let i = i as usize;
                if i >= NUM_BUCKETS {
                    return Err(format!("metric '{name}': bucket index {i} out of range"));
                }
                buckets[i] += n;
            }
            // An empty histogram serializes min=0/max=0; normalize so
            // from_parts' min<=max invariant holds either way.
            let count: u64 = buckets.iter().sum();
            let (min, max) = if count == 0 { (u64::MAX, 0) } else { (min, max) };
            Log2Histogram::from_parts(buckets, sum, min, max)
                .map(MetricValue::Hist)
                .ok_or_else(|| format!("metric '{name}': inconsistent histogram"))
        }
        other => Err(format!("metric '{name}': unknown type '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 7, 4096, u64::MAX] {
            h.record(v);
        }
        snap.insert(0, "ops".into(), MetricValue::Counter(120));
        snap.insert(0, "hwm".into(), MetricValue::Gauge(7));
        snap.insert(0, "lat".into(), MetricValue::Hist(h.clone()));
        snap.insert(3, "ops".into(), MetricValue::Counter(80));
        snap.insert(3, "hwm".into(), MetricValue::Gauge(11));
        snap.insert(3, "lat".into(), MetricValue::Hist(h));
        snap
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // And the serialization itself is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = MetricsSnapshot::from_json(r#"{"schema":"v0","ranks":{}}"#).unwrap_err();
        assert!(err.contains("unsupported metrics schema"), "{err}");
    }

    #[test]
    fn merged_aggregates_by_type() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter_total("ops"), Some(200));
        let merged = snap.merged();
        assert_eq!(merged.get("hwm"), Some(&MetricValue::Gauge(11)));
        match merged.get("lat").unwrap() {
            MetricValue::Hist(h) => assert_eq!(h.count(), 10),
            other => panic!("expected hist, got {other:?}"),
        }
        assert_eq!(snap.merged_counters().get("ops"), Some(&200));
        assert!(!snap.merged_counters().contains_key("hwm"));
    }

    #[test]
    fn empty_histogram_survives_round_trip() {
        let mut snap = MetricsSnapshot::new();
        snap.insert(1, "empty".into(), MetricValue::Hist(Log2Histogram::new()));
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.hist(1, "empty").unwrap().count(), 0);
    }
}
