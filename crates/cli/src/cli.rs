//! Argument parsing and command dispatch for `tricount`.

use std::path::PathBuf;

use tc_core::{Enumeration, KernelStrategy, SummaGrid, TcConfig};
use tc_gen::Preset;

/// Which counting algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's 2D Cannon-grid algorithm (default).
    TwoD,
    /// SUMMA on a rectangular grid.
    Summa,
    /// Serial map-based ⟨j,i,k⟩.
    Serial,
    /// Shared-memory threads.
    Shared,
    /// 1D overlapping partitions (AOP).
    Aop,
    /// 1D space-efficient push (Surrogate).
    Push,
    /// 1D blocked push (OPT-PSP).
    Psp,
    /// Havoq-style wedge checking.
    Wedge,
}

impl Algorithm {
    /// Parses the `--algorithm` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "2d" => Algorithm::TwoD,
            "summa" => Algorithm::Summa,
            "serial" => Algorithm::Serial,
            "shared" => Algorithm::Shared,
            "aop" => Algorithm::Aop,
            "push" => Algorithm::Push,
            "psp" => Algorithm::Psp,
            "wedge" => Algorithm::Wedge,
            other => return Err(format!("unknown algorithm {other:?}")),
        })
    }
}

/// The source of the input graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// Read from a file (format by extension: .mtx, .bin, else text).
    File(PathBuf),
    /// Generate a named preset in-process.
    Preset(Preset),
}

/// A parsed `tricount` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Count triangles.
    Count {
        /// Where the graph comes from.
        input: Input,
        /// Algorithm selection.
        algorithm: Algorithm,
        /// Rank / thread count.
        ranks: usize,
        /// SUMMA grid (when `algorithm == Summa`).
        grid: Option<(usize, usize)>,
        /// Optimization configuration for the 2D paths.
        config: TcConfig,
        /// Generator seed for preset inputs.
        seed: u64,
        /// Also print clustering statistics.
        stats: bool,
        /// When set, record a per-rank execution trace and write it to
        /// this path as Chrome trace-event JSON.
        trace: Option<PathBuf>,
        /// When set, record a per-rank metrics snapshot and write it
        /// to this path as schema-versioned JSON (also embedded in the
        /// trace export when `--trace` is given too).
        metrics: Option<PathBuf>,
        /// When set, run over a deliberately faulty fabric: a
        /// deterministic uniform [`tc_mps::FaultPlan`] with this seed
        /// on every link. The count must still be exact — the
        /// reliable-delivery transport masks the chaos.
        chaos: Option<u64>,
    },
    /// Run as one rank of a multi-process socket universe.
    ServeRank {
        /// Where the graph comes from (must be identical across all
        /// participating processes).
        input: Input,
        /// This process's rank; `None` falls back to `MPS_FABRIC_RANK`.
        rank: Option<usize>,
        /// Comma-separated endpoint list, one per rank in rank order;
        /// `None` falls back to `MPS_FABRIC_PEERS`.
        peers: Option<String>,
        /// Launch epoch for the handshake; `None` falls back to
        /// `MPS_FABRIC_EPOCH` (default 0).
        epoch: Option<u64>,
        /// Algorithm selection (only `2d` and `summa` are distributed
        /// over sockets).
        algorithm: Algorithm,
        /// SUMMA grid (when `algorithm == Summa`).
        grid: Option<(usize, usize)>,
        /// Optimization configuration.
        config: TcConfig,
        /// Generator seed for preset inputs.
        seed: u64,
        /// Chaos seed: injects a deterministic uniform fault plan into
        /// the socket wire layer.
        chaos: Option<u64>,
        /// When set, write this rank's metrics snapshot here.
        metrics: Option<PathBuf>,
        /// When set, record this rank's execution trace (including the
        /// fabric connect/handshake spans) as Chrome trace-event JSON.
        trace: Option<PathBuf>,
    },
    /// Run the always-on analytics service (`tc-serve`).
    Serve {
        /// Where the graph comes from.
        input: Input,
        /// Unix-socket path the rank-0 frontend listens on.
        listen: PathBuf,
        /// In-process rank count (local mode; ignored when this
        /// process is one rank of a socket fleet).
        ranks: usize,
        /// This process's rank in a socket fleet; `None` (with no
        /// `MPS_FABRIC_*` environment) means local mode.
        rank: Option<usize>,
        /// Comma-separated endpoint list for the socket fleet.
        peers: Option<String>,
        /// Launch epoch for the socket handshake.
        epoch: Option<u64>,
        /// Cold-start/oracle kernel (only `2d` and `summa` serve).
        algorithm: Algorithm,
        /// SUMMA grid (when `algorithm == Summa`).
        grid: Option<(usize, usize)>,
        /// Kernel tunables for cold start and recounts.
        config: TcConfig,
        /// Generator seed for preset inputs.
        seed: u64,
        /// Chaos seed: a deterministic uniform fault plan on every
        /// link — the service must stay exact regardless.
        chaos: Option<u64>,
        /// When set, write the final metrics snapshot here on exit.
        metrics: Option<PathBuf>,
        /// When set, rank 0 appends one `tc-run-v2` record here on
        /// exit, distilled from the service-lifetime metrics session.
        json: Option<PathBuf>,
        /// Coalescing flush interval override (`MPS_SERVE_FLUSH_MS`).
        flush_ms: Option<u64>,
        /// Batch-size flush threshold override (`MPS_SERVE_MAX_BATCH`).
        max_batch: Option<usize>,
        /// Admission-queue capacity override (`MPS_SERVE_QUEUE`).
        queue: Option<usize>,
        /// Idle heartbeat interval override (`MPS_SERVE_TICK_MS`).
        tick_ms: Option<u64>,
        /// When set, run crash-recoverable: rank-local checkpoints +
        /// WAL under this directory, epoch rejoin after peer crashes,
        /// degraded-mode serving on rank 0. Requires socket mode.
        state_dir: Option<PathBuf>,
    },
    /// Supervise a crash-recoverable multi-process serve fleet.
    Supervise {
        /// The graph argument, passed through verbatim to each rank's
        /// `serve` child process.
        input: String,
        /// Unix-socket path the rank-0 frontend listens on.
        listen: PathBuf,
        /// Fleet state directory (epoch file, per-rank durability,
        /// logs, pid files). Fabric endpoints live here too.
        state_dir: PathBuf,
        /// Fleet size.
        ranks: usize,
        /// Total crash budget before the fleet is declared dead.
        max_restarts: u32,
        /// Base of the exponential respawn backoff, in ms.
        backoff_ms: u64,
        /// Extra flags after `--`, passed through to every rank's
        /// `serve` command (e.g. `--algorithm summa --seed 7`).
        passthrough: Vec<String>,
    },
    /// Send one request to a running service and print the reply.
    Query {
        /// The service's listen socket.
        socket: PathBuf,
        /// The serialized request line to send.
        request: String,
        /// How long to retry connecting while the service cold-starts.
        timeout_ms: u64,
    },
    /// Generate a preset and write it to a file.
    Generate {
        /// The preset to build.
        preset: Preset,
        /// Generator seed.
        seed: u64,
        /// Output path (.bin or text by extension).
        output: PathBuf,
    },
    /// Print basic facts about a graph.
    Info {
        /// Where the graph comes from.
        input: Input,
    },
    /// k-truss decomposition (distributed peeling).
    Truss {
        /// Where the graph comes from.
        input: Input,
        /// Rank count.
        ranks: usize,
        /// Generator seed for preset inputs.
        seed: u64,
    },
    /// Validate a Chrome trace-event file produced by `--trace` and
    /// print a summary of its lanes and spans.
    TraceCheck {
        /// The trace file to check.
        file: PathBuf,
    },
    /// Compare bench JSON-lines reports and fail on regressions
    /// (passthrough to `tc_metrics::diff::cli_main`).
    BenchDiff {
        /// Raw arguments forwarded to the diff driver.
        args: Vec<String>,
    },
    /// Render the per-commit perf-trend history (passthrough to
    /// `tc_metrics::trend::cli_main`).
    PerfTrend {
        /// Raw arguments forwarded to the trend driver.
        args: Vec<String>,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
tricount — distributed-memory triangle counting (Tom & Karypis, ICPP 2019)

USAGE:
  tricount count  <FILE|PRESET> [--algorithm 2d|summa|serial|shared|aop|push|psp|wedge]
                  [--ranks N] [--grid RxC] [--seed S] [--stats]
                  [--enumeration jik|ijk] [--no-doubly-sparse] [--no-direct-hash]
                  [--no-early-break] [--no-overlap] [--kernel auto|hash|merge|bitmap]
                  [--trace FILE] [--metrics FILE] [--chaos SEED]
  tricount serve-rank <FILE|PRESET> [--rank N --peers EP0,EP1,...] [--epoch E]
                  [--algorithm 2d|summa] [--grid RxC] [--seed S] [--chaos SEED]
                  [--metrics FILE] [--trace FILE] [--enumeration jik|ijk]
                  [--no-doubly-sparse] [--no-direct-hash] [--no-early-break]
                  [--no-overlap] [--kernel auto|hash|merge|bitmap]
  tricount serve  <FILE|PRESET> --listen SOCK [--ranks N] [--rank N --peers EP0,...]
                  [--epoch E] [--state-dir DIR] [--algorithm 2d|summa] [--grid RxC]
                  [--seed S] [--chaos SEED] [--metrics FILE] [--json FILE]
                  [--flush-ms MS] [--max-batch N] [--queue N] [--tick-ms MS]
                  [--enumeration jik|ijk] [--no-doubly-sparse] [--no-direct-hash]
                  [--no-early-break] [--no-overlap] [--kernel auto|hash|merge|bitmap]
  tricount supervise <FILE|PRESET> --listen SOCK --state-dir DIR [--ranks N]
                  [--max-restarts N] [--backoff-ms MS] [-- SERVE-FLAGS...]
  tricount query  <SOCK> count|stats|metrics|flush|shutdown [--timeout-ms MS]
  tricount query  <SOCK> support <U> <V> | truss <K> [--timeout-ms MS]
  tricount query  <SOCK> update [--insert U:V,...] [--delete U:V,...]
  tricount query  <SOCK> raw '<JSON LINE>'
  tricount generate <PRESET> --out FILE [--seed S]
  tricount info   <FILE|PRESET>
  tricount truss  <FILE|PRESET> [--ranks N] [--seed S]
  tricount tracecheck <FILE>
  tricount benchdiff <BASELINE.json> <CANDIDATE.json>... [--tol F]
                  [--sigmas F] [--min-effect F] [--min-timing-ms F]
                  [--deterministic-only] [--verdict-json FILE]
                  [--history FILE --commit SHA --date ISO]
  tricount perftrend <HISTORY.jsonl> [--last N] [--html FILE]
  tricount help

PRESETs: g500-sN, twitter-like-N, friendster-like-N (N = log2 vertices).
FILE formats: .mtx (Matrix Market), .bin (tricount binary), other (text edge list).
--trace FILE records one lane per rank (phases, shifts, collectives) as
Chrome trace-event JSON; open in Perfetto (ui.perfetto.dev) or
chrome://tracing, or inspect with `tricount tracecheck FILE`.
--metrics FILE writes the per-rank tc-metrics snapshot (counters, gauges,
histograms) as schema-versioned JSON; with --trace it is also embedded in
the trace document under \"tcMetrics\".
--kernel picks the set-intersection strategy of the 2D/SUMMA per-shift
kernel: auto (default; per-row/per-task dispatch between the hash probe,
the vectorized sorted-merge, and packed bitmap rows for hubs), or one of
hash|merge|bitmap to force a strategy — counts, per-edge supports, and
every deterministic counter are identical under all four. The TC_KERNEL
environment variable supplies the default (strict parse: an invalid
value aborts at startup, like the MPS_* family); an explicit --kernel
flag wins over it.
--chaos SEED runs the distributed algorithms over a deliberately faulty
fabric (a seeded, deterministic fault plan injecting delays, drops,
duplicates, reorders, truncations, and bit-flips on every link); the
reliable-delivery transport must still produce the exact count. The
MPS_CHAOS_* environment family configures finer-grained plans.
serve-rank runs this process as ONE rank of a multi-process universe
over Unix-domain or TCP sockets: every rank is its own OS process,
started with the same input and flags. Endpoints are Unix socket paths
(contain '/' or use a 'unix:' prefix) or TCP host:port pairs; rank r
listens on the r-th entry. --rank/--peers/--epoch fall back to the
MPS_FABRIC_RANK / MPS_FABRIC_PEERS / MPS_FABRIC_EPOCH environment
variables. All application traffic crosses the reliable transport
(framed, checksummed, NACK/retransmit) on this backend.
serve keeps a rank fleet alive behind a Unix-socket frontend: load the
graph once, count it cold with the 2D kernel, then answer count /
support / truss / stats / metrics queries and absorb insert/delete
batches incrementally (touched-neighborhood intersections only — never
a hot-path recount). Without --rank/--peers (and with no MPS_FABRIC_*
environment) the fleet is --ranks in-process threads; otherwise this
process is ONE rank of a multi-process socket fleet and only rank 0
binds --listen. The MPS_SERVE_{FLUSH_MS,MAX_BATCH,QUEUE,TICK_MS}
environment family seeds the knobs; explicit flags win. With --json,
rank 0 appends one tc-run-v2 record at shutdown (the sustained-workload
analogue of the bench binaries' reports — serve.* counters nonzero,
full_recounts pinned at the cold start).
serve --state-dir DIR makes a socket fleet crash-recoverable: each rank
checkpoints its adjacency block (CRC-checked snapshots, two generations
kept) and write-ahead-logs every committed batch under DIR/rank-N; after
a crash the respawned rank restores checkpoint + WAL, laggards are
bridged from a peer's WAL tail, and an edge-set fingerprint allreduce
verifies the rejoin before serving resumes. While a peer is down rank 0
keeps answering: reads of clean state succeed, writes queue in a bounded
buffer, everything else gets a typed {\"error\":\"degraded\"} reply with a
retry_after_ms hint — never a hang. MPS_SERVE_CKPT_EVERY and
MPS_SERVE_REJOIN_WAIT_MS tune the cadence and the rejoin deadline.
supervise runs that fleet for you: it spawns one serve process per rank
(endpoints DIR/fab-N.sock, logs DIR/rank-N.log, pids DIR/rank-N.pid),
watches them, and respawns any crashed non-zero rank at a bumped epoch
with exponential backoff, up to --max-restarts total crashes before
declaring the fleet dead with a loud nonzero exit. Flags after -- pass
through to every rank's serve command.
query speaks the service's line-delimited JSON protocol: it prints the
raw reply line and exits 0 when the reply says ok, 4 when the service
is degraded (a rank is down; retry after the hinted delay), and 1 on
any other error reply (e.g. the typed over_capacity admission
rejection).
benchdiff compares tc-run-v2 reports produced by the bench binaries'
--json flag (v1 reports still parse; their timings count as one try).
Timings with repeat data are judged by effect size — Welch's t beyond
--sigmas (default 3) AND a relative shift beyond --min-effect (default
2%) — while single-shot rows fall back to the fixed --tol band, and
deterministic counters stay exact. With --history (plus --commit and
--date), a passing diff appends one tc-bench-history-v1 row per
(run, timing) for perftrend. Exit 0 = pass, 1 = regression,
2 = usage/parse error.
perftrend renders the appended history as an ASCII sparkline table
(plus a self-contained HTML/SVG page with --html), flagging the worst
regression and best improvement across the last N commits.

EXIT CODES: 0 success, 1 runtime failure, 2 usage/parse error,
3 invalid input graph (truncated/corrupt/out-of-range), 4 degraded
service reply (query only; retry after the hinted delay).
";

/// Parses a `U:V,U:V,...` edge list (the `query update` wire form).
fn parse_edge_csv(s: &str) -> Result<Vec<(u32, u32)>, String> {
    s.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            let (u, v) =
                t.trim().split_once(':').ok_or(format!("edge {t:?} must look like U:V"))?;
            Ok((
                u.parse().map_err(|e| format!("bad vertex in {t:?}: {e}"))?,
                v.parse().map_err(|e| format!("bad vertex in {t:?}: {e}"))?,
            ))
        })
        .collect()
}

fn parse_input(s: &str) -> Input {
    match Preset::parse(s) {
        Some(p) => Input::Preset(p),
        None => Input::File(PathBuf::from(s)),
    }
}

/// Parses an argument vector (without the program name), with an
/// environment-supplied kernel-strategy default (`TC_KERNEL`, resolved
/// by the caller so parsing stays pure): it seeds the config of the
/// counting commands, and an explicit `--kernel` flag overrides it.
pub fn parse_with_env(
    args: &[String],
    env_kernel: Option<KernelStrategy>,
) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next() {
        None => return Ok(Command::Help),
        Some(c) => c.as_str(),
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => {
            let input = it.next().ok_or("info needs an input")?;
            Ok(Command::Info { input: parse_input(input) })
        }
        "truss" => {
            let input = parse_input(it.next().ok_or("truss needs an input")?);
            let mut ranks = 4usize;
            let mut seed = tc_gen::DEFAULT_SEED;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--ranks" => {
                        ranks = it
                            .next()
                            .ok_or("--ranks needs a value")?
                            .parse()
                            .map_err(|e| format!("bad ranks: {e}"))?;
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Truss { input, ranks, seed })
        }
        "benchdiff" => Ok(Command::BenchDiff { args: it.cloned().collect() }),
        "perftrend" => Ok(Command::PerfTrend { args: it.cloned().collect() }),
        "serve-rank" => {
            let input = parse_input(it.next().ok_or("serve-rank needs an input")?);
            let mut rank = None;
            let mut peers = None;
            let mut epoch = None;
            let mut algorithm = Algorithm::TwoD;
            let mut grid = None;
            let mut config = TcConfig::paper();
            if let Some(k) = env_kernel {
                config.kernel = k;
            }
            let mut seed = tc_gen::DEFAULT_SEED;
            let mut chaos = None;
            let mut metrics = None;
            let mut trace = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--rank" => {
                        rank = Some(
                            it.next()
                                .ok_or("--rank needs a value")?
                                .parse()
                                .map_err(|e| format!("bad rank: {e}"))?,
                        );
                    }
                    "--peers" => peers = Some(it.next().ok_or("--peers needs a list")?.clone()),
                    "--epoch" => {
                        epoch = Some(
                            it.next()
                                .ok_or("--epoch needs a value")?
                                .parse()
                                .map_err(|e| format!("bad epoch: {e}"))?,
                        );
                    }
                    "--algorithm" => {
                        algorithm =
                            Algorithm::parse(it.next().ok_or("--algorithm needs a value")?)?;
                    }
                    "--grid" => {
                        let v = it.next().ok_or("--grid needs RxC")?;
                        let (r, c) = v.split_once('x').ok_or("grid must look like 3x4")?;
                        grid = Some((
                            r.parse().map_err(|e| format!("bad grid rows: {e}"))?,
                            c.parse().map_err(|e| format!("bad grid cols: {e}"))?,
                        ));
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    "--chaos" => {
                        chaos = Some(
                            it.next()
                                .ok_or("--chaos needs a seed")?
                                .parse()
                                .map_err(|e| format!("bad chaos seed: {e}"))?,
                        );
                    }
                    "--metrics" => {
                        metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?))
                    }
                    "--trace" => {
                        trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?))
                    }
                    "--enumeration" => {
                        config.enumeration =
                            match it.next().ok_or("--enumeration needs a value")?.as_str() {
                                "jik" => Enumeration::Jik,
                                "ijk" => Enumeration::Ijk,
                                other => return Err(format!("unknown enumeration {other:?}")),
                            };
                    }
                    "--no-doubly-sparse" => config.doubly_sparse = false,
                    "--no-direct-hash" => config.direct_hash = false,
                    "--no-early-break" => config.reverse_early_break = false,
                    "--no-overlap" => config.overlap_shifts = false,
                    "--kernel" => {
                        config.kernel = it
                            .next()
                            .ok_or("--kernel needs a value (auto|hash|merge|bitmap)")?
                            .parse()?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if rank.is_some() != peers.is_some() {
                return Err("serve-rank needs both --rank and --peers (or neither, with the \
                            MPS_FABRIC_* environment set)"
                    .into());
            }
            if !matches!(algorithm, Algorithm::TwoD | Algorithm::Summa) {
                return Err("serve-rank supports only the socket-distributed algorithms \
                            (2d, summa)"
                    .into());
            }
            Ok(Command::ServeRank {
                input,
                rank,
                peers,
                epoch,
                algorithm,
                grid,
                config,
                seed,
                chaos,
                metrics,
                trace,
            })
        }
        "serve" => {
            let input = parse_input(it.next().ok_or("serve needs an input")?);
            let mut listen = None;
            let mut ranks = 4usize;
            let mut rank = None;
            let mut peers = None;
            let mut epoch = None;
            let mut algorithm = Algorithm::TwoD;
            let mut grid = None;
            let mut config = TcConfig::paper();
            if let Some(k) = env_kernel {
                config.kernel = k;
            }
            let mut seed = tc_gen::DEFAULT_SEED;
            let mut chaos = None;
            let mut metrics = None;
            let mut json = None;
            let mut flush_ms = None;
            let mut max_batch = None;
            let mut queue = None;
            let mut tick_ms = None;
            let mut state_dir = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--listen" => {
                        listen = Some(PathBuf::from(it.next().ok_or("--listen needs a path")?))
                    }
                    "--state-dir" => {
                        state_dir =
                            Some(PathBuf::from(it.next().ok_or("--state-dir needs a path")?))
                    }
                    "--ranks" => {
                        ranks = it
                            .next()
                            .ok_or("--ranks needs a value")?
                            .parse()
                            .map_err(|e| format!("bad ranks: {e}"))?;
                    }
                    "--rank" => {
                        rank = Some(
                            it.next()
                                .ok_or("--rank needs a value")?
                                .parse()
                                .map_err(|e| format!("bad rank: {e}"))?,
                        );
                    }
                    "--peers" => peers = Some(it.next().ok_or("--peers needs a list")?.clone()),
                    "--epoch" => {
                        epoch = Some(
                            it.next()
                                .ok_or("--epoch needs a value")?
                                .parse()
                                .map_err(|e| format!("bad epoch: {e}"))?,
                        );
                    }
                    "--algorithm" => {
                        algorithm =
                            Algorithm::parse(it.next().ok_or("--algorithm needs a value")?)?;
                    }
                    "--grid" => {
                        let v = it.next().ok_or("--grid needs RxC")?;
                        let (r, c) = v.split_once('x').ok_or("grid must look like 3x4")?;
                        grid = Some((
                            r.parse().map_err(|e| format!("bad grid rows: {e}"))?,
                            c.parse().map_err(|e| format!("bad grid cols: {e}"))?,
                        ));
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    "--chaos" => {
                        chaos = Some(
                            it.next()
                                .ok_or("--chaos needs a seed")?
                                .parse()
                                .map_err(|e| format!("bad chaos seed: {e}"))?,
                        );
                    }
                    "--metrics" => {
                        metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?))
                    }
                    "--json" => json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
                    "--flush-ms" => {
                        flush_ms = Some(
                            it.next()
                                .ok_or("--flush-ms needs a value")?
                                .parse()
                                .map_err(|e| format!("bad flush interval: {e}"))?,
                        );
                    }
                    "--max-batch" => {
                        max_batch = Some(
                            it.next()
                                .ok_or("--max-batch needs a value")?
                                .parse()
                                .map_err(|e| format!("bad batch threshold: {e}"))?,
                        );
                    }
                    "--queue" => {
                        queue = Some(
                            it.next()
                                .ok_or("--queue needs a value")?
                                .parse()
                                .map_err(|e| format!("bad queue capacity: {e}"))?,
                        );
                    }
                    "--tick-ms" => {
                        tick_ms = Some(
                            it.next()
                                .ok_or("--tick-ms needs a value")?
                                .parse()
                                .map_err(|e| format!("bad tick interval: {e}"))?,
                        );
                    }
                    "--enumeration" => {
                        config.enumeration =
                            match it.next().ok_or("--enumeration needs a value")?.as_str() {
                                "jik" => Enumeration::Jik,
                                "ijk" => Enumeration::Ijk,
                                other => return Err(format!("unknown enumeration {other:?}")),
                            };
                    }
                    "--no-doubly-sparse" => config.doubly_sparse = false,
                    "--no-direct-hash" => config.direct_hash = false,
                    "--no-early-break" => config.reverse_early_break = false,
                    "--no-overlap" => config.overlap_shifts = false,
                    "--kernel" => {
                        config.kernel = it
                            .next()
                            .ok_or("--kernel needs a value (auto|hash|merge|bitmap)")?
                            .parse()?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if rank.is_some() != peers.is_some() {
                return Err("serve needs both --rank and --peers for socket mode (or \
                            neither, with the MPS_FABRIC_* environment or local --ranks)"
                    .into());
            }
            if !matches!(algorithm, Algorithm::TwoD | Algorithm::Summa) {
                return Err("serve supports only the fleet algorithms (2d, summa)".into());
            }
            Ok(Command::Serve {
                input,
                listen: listen.ok_or("serve requires --listen SOCK")?,
                ranks,
                rank,
                peers,
                epoch,
                algorithm,
                grid,
                config,
                seed,
                chaos,
                metrics,
                json,
                flush_ms,
                max_batch,
                queue,
                tick_ms,
                state_dir,
            })
        }
        "supervise" => {
            let input = it.next().ok_or("supervise needs an input")?.clone();
            let mut listen = None;
            let mut state_dir = None;
            let mut ranks = 4usize;
            let mut max_restarts = 8u32;
            let mut backoff_ms = 100u64;
            let mut passthrough = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--listen" => {
                        listen = Some(PathBuf::from(it.next().ok_or("--listen needs a path")?))
                    }
                    "--state-dir" => {
                        state_dir =
                            Some(PathBuf::from(it.next().ok_or("--state-dir needs a path")?))
                    }
                    "--ranks" => {
                        ranks = it
                            .next()
                            .ok_or("--ranks needs a value")?
                            .parse()
                            .map_err(|e| format!("bad ranks: {e}"))?;
                    }
                    "--max-restarts" => {
                        max_restarts = it
                            .next()
                            .ok_or("--max-restarts needs a value")?
                            .parse()
                            .map_err(|e| format!("bad restart budget: {e}"))?;
                    }
                    "--backoff-ms" => {
                        backoff_ms = it
                            .next()
                            .ok_or("--backoff-ms needs a value")?
                            .parse()
                            .map_err(|e| format!("bad backoff: {e}"))?;
                    }
                    "--" => {
                        passthrough = it.cloned().collect();
                        break;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if ranks == 0 {
                return Err("supervise needs at least one rank".into());
            }
            Ok(Command::Supervise {
                input,
                listen: listen.ok_or("supervise requires --listen SOCK")?,
                state_dir: state_dir.ok_or("supervise requires --state-dir DIR")?,
                ranks,
                max_restarts,
                backoff_ms,
                passthrough,
            })
        }
        "query" => {
            let socket = PathBuf::from(it.next().ok_or("query needs a socket path")?);
            let op = it
                .next()
                .ok_or(
                    "query needs an operation: count|support|truss|stats|metrics|\
                     update|flush|shutdown|raw",
                )?
                .as_str();
            use tc_serve::proto::{request_line, Request};
            let mut request = match op {
                "count" => request_line(&Request::Count),
                "stats" => request_line(&Request::Stats),
                "metrics" => request_line(&Request::Metrics),
                "flush" => request_line(&Request::Flush),
                "shutdown" => request_line(&Request::Shutdown),
                "support" => {
                    let u = it
                        .next()
                        .ok_or("query support needs <U> <V>")?
                        .parse()
                        .map_err(|e| format!("bad vertex <U>: {e}"))?;
                    let v = it
                        .next()
                        .ok_or("query support needs <U> <V>")?
                        .parse()
                        .map_err(|e| format!("bad vertex <V>: {e}"))?;
                    request_line(&Request::Support { u, v })
                }
                "truss" => {
                    let k = it
                        .next()
                        .ok_or("query truss needs <K>")?
                        .parse()
                        .map_err(|e| format!("bad truss <K>: {e}"))?;
                    request_line(&Request::Truss { k })
                }
                "update" => String::new(), // built from --insert/--delete below
                "raw" => it.next().ok_or("query raw needs a JSON line")?.clone(),
                other => return Err(format!("unknown query operation {other:?}")),
            };
            let mut timeout_ms = 10_000u64;
            let mut insert = Vec::new();
            let mut delete = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--timeout-ms" => {
                        timeout_ms = it
                            .next()
                            .ok_or("--timeout-ms needs a value")?
                            .parse()
                            .map_err(|e| format!("bad timeout: {e}"))?;
                    }
                    "--insert" if op == "update" => {
                        insert.extend(parse_edge_csv(it.next().ok_or("--insert needs U:V,...")?)?)
                    }
                    "--delete" if op == "update" => {
                        delete.extend(parse_edge_csv(it.next().ok_or("--delete needs U:V,...")?)?)
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if op == "update" {
                if insert.is_empty() && delete.is_empty() {
                    return Err("query update needs --insert and/or --delete edges".into());
                }
                request = request_line(&Request::Update { insert, delete });
            }
            Ok(Command::Query { socket, request, timeout_ms })
        }
        "tracecheck" => {
            let file = PathBuf::from(it.next().ok_or("tracecheck needs a trace file")?);
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument {extra:?}"));
            }
            Ok(Command::TraceCheck { file })
        }
        "generate" => {
            let name = it.next().ok_or("generate needs a preset")?;
            let preset = Preset::parse(name).ok_or_else(|| format!("unknown preset {name:?}"))?;
            let mut seed = tc_gen::DEFAULT_SEED;
            let mut output = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    "--out" => output = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Generate {
                preset,
                seed,
                output: output.ok_or("generate requires --out FILE")?,
            })
        }
        "count" => {
            let input = parse_input(it.next().ok_or("count needs an input")?);
            let mut algorithm = Algorithm::TwoD;
            let mut ranks = 4usize;
            let mut grid = None;
            let mut config = TcConfig::paper();
            if let Some(k) = env_kernel {
                config.kernel = k;
            }
            let mut seed = tc_gen::DEFAULT_SEED;
            let mut stats = false;
            let mut trace = None;
            let mut metrics = None;
            let mut chaos = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--algorithm" => {
                        algorithm =
                            Algorithm::parse(it.next().ok_or("--algorithm needs a value")?)?;
                    }
                    "--ranks" => {
                        ranks = it
                            .next()
                            .ok_or("--ranks needs a value")?
                            .parse()
                            .map_err(|e| format!("bad ranks: {e}"))?;
                    }
                    "--grid" => {
                        let v = it.next().ok_or("--grid needs RxC")?;
                        let (r, c) = v.split_once('x').ok_or("grid must look like 3x4")?;
                        grid = Some((
                            r.parse().map_err(|e| format!("bad grid rows: {e}"))?,
                            c.parse().map_err(|e| format!("bad grid cols: {e}"))?,
                        ));
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    "--enumeration" => {
                        config.enumeration =
                            match it.next().ok_or("--enumeration needs a value")?.as_str() {
                                "jik" => Enumeration::Jik,
                                "ijk" => Enumeration::Ijk,
                                other => return Err(format!("unknown enumeration {other:?}")),
                            };
                    }
                    "--no-doubly-sparse" => config.doubly_sparse = false,
                    "--no-direct-hash" => config.direct_hash = false,
                    "--no-early-break" => config.reverse_early_break = false,
                    "--no-overlap" => config.overlap_shifts = false,
                    "--kernel" => {
                        config.kernel = it
                            .next()
                            .ok_or("--kernel needs a value (auto|hash|merge|bitmap)")?
                            .parse()?;
                    }
                    "--stats" => stats = true,
                    "--trace" => {
                        trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?))
                    }
                    "--metrics" => {
                        metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a path")?))
                    }
                    "--chaos" => {
                        chaos = Some(
                            it.next()
                                .ok_or("--chaos needs a seed")?
                                .parse()
                                .map_err(|e| format!("bad chaos seed: {e}"))?,
                        )
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if algorithm == Algorithm::TwoD && tc_mps::perfect_square_side(ranks).is_none() {
                return Err(format!(
                    "the 2d algorithm needs a perfect-square rank count, got {ranks} \
                     (use --algorithm summa --grid RxC for rectangles)"
                ));
            }
            if algorithm == Algorithm::Summa && grid.is_none() {
                // Derive a near-square rectangle from --ranks.
                let r = (ranks as f64).sqrt() as usize;
                let r = (1..=r.max(1)).rev().find(|d| ranks % d == 0).unwrap_or(1);
                grid = Some((r, ranks / r));
            }
            if trace.is_some() && matches!(algorithm, Algorithm::Serial | Algorithm::Shared) {
                return Err(
                    "--trace needs a distributed algorithm (2d, summa, aop, push, psp, wedge)"
                        .into(),
                );
            }
            if metrics.is_some() && matches!(algorithm, Algorithm::Serial | Algorithm::Shared) {
                return Err(
                    "--metrics needs a distributed algorithm (2d, summa, aop, push, psp, wedge)"
                        .into(),
                );
            }
            if chaos.is_some() && matches!(algorithm, Algorithm::Serial | Algorithm::Shared) {
                return Err(
                    "--chaos needs a distributed algorithm (2d, summa, aop, push, psp, wedge)"
                        .into(),
                );
            }
            Ok(Command::Count {
                input,
                algorithm,
                ranks,
                grid,
                config,
                seed,
                stats,
                trace,
                metrics,
                chaos,
            })
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Builds a [`SummaGrid`] from the parsed pair.
pub fn summa_grid(grid: (usize, usize)) -> SummaGrid {
    SummaGrid::new(grid.0, grid.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, String> {
        parse_with_env(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>(), None)
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(p(&[]).unwrap(), Command::Help);
        assert_eq!(p(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn count_defaults() {
        match p(&["count", "g500-s10"]).unwrap() {
            Command::Count { input, algorithm, ranks, config, stats, .. } => {
                assert_eq!(input, Input::Preset(Preset::G500 { scale: 10 }));
                assert_eq!(algorithm, Algorithm::TwoD);
                assert_eq!(ranks, 4);
                assert_eq!(config, TcConfig::paper());
                assert!(!stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_full_flags() {
        match p(&[
            "count",
            "graph.mtx",
            "--algorithm",
            "summa",
            "--grid",
            "2x3",
            "--seed",
            "9",
            "--no-direct-hash",
            "--no-overlap",
            "--enumeration",
            "ijk",
            "--stats",
        ])
        .unwrap()
        {
            Command::Count { input, algorithm, grid, config, seed, stats, .. } => {
                assert_eq!(input, Input::File(PathBuf::from("graph.mtx")));
                assert_eq!(algorithm, Algorithm::Summa);
                assert_eq!(grid, Some((2, 3)));
                assert!(!config.direct_hash);
                assert!(!config.overlap_shifts);
                assert_eq!(config.enumeration, Enumeration::Ijk);
                assert_eq!(seed, 9);
                assert!(stats);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn summa_grid_derived_from_ranks() {
        match p(&["count", "g500-s8", "--algorithm", "summa", "--ranks", "12"]).unwrap() {
            Command::Count { grid, .. } => assert_eq!(grid, Some((3, 4))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_non_square_2d() {
        assert!(p(&["count", "g500-s8", "--ranks", "6"]).is_err());
    }

    #[test]
    fn generate_requires_out() {
        assert!(p(&["generate", "g500-s8"]).is_err());
        match p(&["generate", "g500-s8", "--out", "/tmp/x.bin", "--seed", "3"]).unwrap() {
            Command::Generate { preset, seed, output } => {
                assert_eq!(preset, Preset::G500 { scale: 8 });
                assert_eq!(seed, 3);
                assert_eq!(output, PathBuf::from("/tmp/x.bin"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truss_parses() {
        match p(&["truss", "g500-s8", "--ranks", "3"]).unwrap() {
            Command::Truss { ranks, .. } => assert_eq!(ranks, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_flag_parses_and_rejects_local_algorithms() {
        match p(&["count", "g500-s8", "--trace", "/tmp/t.json"]).unwrap() {
            Command::Count { trace, .. } => {
                assert_eq!(trace, Some(PathBuf::from("/tmp/t.json")))
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["count", "g500-s8", "--algorithm", "serial", "--trace", "t.json"]).is_err());
        assert!(p(&["count", "g500-s8", "--trace"]).is_err());
    }

    #[test]
    fn metrics_flag_parses_and_rejects_local_algorithms() {
        match p(&["count", "g500-s8", "--metrics", "/tmp/m.json"]).unwrap() {
            Command::Count { metrics, .. } => {
                assert_eq!(metrics, Some(PathBuf::from("/tmp/m.json")))
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["count", "g500-s8", "--algorithm", "shared", "--metrics", "m.json"]).is_err());
        assert!(p(&["count", "g500-s8", "--metrics"]).is_err());
    }

    #[test]
    fn chaos_flag_parses_and_rejects_local_algorithms() {
        match p(&["count", "g500-s8", "--chaos", "42"]).unwrap() {
            Command::Count { chaos, .. } => assert_eq!(chaos, Some(42)),
            other => panic!("{other:?}"),
        }
        match p(&["count", "g500-s8"]).unwrap() {
            Command::Count { chaos, .. } => assert_eq!(chaos, None),
            other => panic!("{other:?}"),
        }
        assert!(p(&["count", "g500-s8", "--algorithm", "serial", "--chaos", "1"]).is_err());
        assert!(p(&["count", "g500-s8", "--chaos"]).is_err());
        assert!(p(&["count", "g500-s8", "--chaos", "soon"]).is_err());
    }

    #[test]
    fn serve_rank_parses() {
        match p(&[
            "serve-rank",
            "g500-s6",
            "--rank",
            "3",
            "--peers",
            "/tmp/a,/tmp/b,/tmp/c,/tmp/d",
            "--epoch",
            "5",
            "--chaos",
            "42",
            "--trace",
            "/tmp/r3.trace.json",
        ])
        .unwrap()
        {
            Command::ServeRank { rank, peers, epoch, algorithm, chaos, trace, .. } => {
                assert_eq!(rank, Some(3));
                assert_eq!(peers.as_deref(), Some("/tmp/a,/tmp/b,/tmp/c,/tmp/d"));
                assert_eq!(epoch, Some(5));
                assert_eq!(algorithm, Algorithm::TwoD);
                assert_eq!(chaos, Some(42));
                assert_eq!(trace, Some(PathBuf::from("/tmp/r3.trace.json")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_rank_env_fallback_needs_neither_flag() {
        // Neither --rank nor --peers: deferred to the MPS_FABRIC_* env.
        match p(&["serve-rank", "g500-s6"]).unwrap() {
            Command::ServeRank { rank, peers, .. } => {
                assert_eq!(rank, None);
                assert_eq!(peers, None);
            }
            other => panic!("{other:?}"),
        }
        // One without the other is a usage error.
        assert!(p(&["serve-rank", "g500-s6", "--rank", "0"]).is_err());
        assert!(p(&["serve-rank", "g500-s6", "--peers", "/tmp/a"]).is_err());
    }

    #[test]
    fn serve_rank_rejects_local_algorithms() {
        assert!(p(&["serve-rank", "g500-s6", "--algorithm", "serial"]).is_err());
        assert!(p(&["serve-rank", "g500-s6", "--algorithm", "aop"]).is_err());
        assert!(p(&["serve-rank", "g500-s6", "--algorithm", "summa", "--grid", "2x3"]).is_ok());
    }

    #[test]
    fn serve_parses_full_flags() {
        match p(&[
            "serve",
            "g500-s6",
            "--listen",
            "/tmp/tc.sock",
            "--ranks",
            "9",
            "--flush-ms",
            "20",
            "--max-batch",
            "128",
            "--queue",
            "8",
            "--tick-ms",
            "500",
            "--chaos",
            "7",
            "--metrics",
            "/tmp/m.json",
            "--json",
            "/tmp/r.json",
        ])
        .unwrap()
        {
            Command::Serve {
                listen,
                ranks,
                rank,
                algorithm,
                flush_ms,
                max_batch,
                queue,
                tick_ms,
                chaos,
                metrics,
                json,
                ..
            } => {
                assert_eq!(listen, PathBuf::from("/tmp/tc.sock"));
                assert_eq!(ranks, 9);
                assert_eq!(rank, None);
                assert_eq!(algorithm, Algorithm::TwoD);
                assert_eq!(flush_ms, Some(20));
                assert_eq!(max_batch, Some(128));
                assert_eq!(queue, Some(8));
                assert_eq!(tick_ms, Some(500));
                assert_eq!(chaos, Some(7));
                assert_eq!(metrics, Some(PathBuf::from("/tmp/m.json")));
                assert_eq!(json, Some(PathBuf::from("/tmp/r.json")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_requires_listen_and_fleet_algorithms() {
        assert!(p(&["serve", "g500-s6"]).is_err());
        assert!(p(&["serve", "g500-s6", "--listen", "/tmp/a", "--algorithm", "serial"]).is_err());
        assert!(p(&["serve", "g500-s6", "--listen", "/tmp/a", "--rank", "0"]).is_err());
        assert!(p(&[
            "serve",
            "g500-s6",
            "--listen",
            "/tmp/a",
            "--rank",
            "0",
            "--peers",
            "/tmp/p0,/tmp/p1",
        ])
        .is_ok());
    }

    #[test]
    fn serve_state_dir_parses() {
        match p(&["serve", "g500-s6", "--listen", "/tmp/a", "--state-dir", "/tmp/fleet"]).unwrap() {
            Command::Serve { state_dir, .. } => {
                assert_eq!(state_dir, Some(PathBuf::from("/tmp/fleet")))
            }
            other => panic!("{other:?}"),
        }
        match p(&["serve", "g500-s6", "--listen", "/tmp/a"]).unwrap() {
            Command::Serve { state_dir, .. } => assert_eq!(state_dir, None),
            other => panic!("{other:?}"),
        }
        assert!(p(&["serve", "g500-s6", "--listen", "/tmp/a", "--state-dir"]).is_err());
    }

    #[test]
    fn supervise_parses_with_passthrough() {
        match p(&[
            "supervise",
            "g500-s6",
            "--listen",
            "/tmp/tc.sock",
            "--state-dir",
            "/tmp/fleet",
            "--ranks",
            "9",
            "--max-restarts",
            "3",
            "--backoff-ms",
            "50",
            "--",
            "--algorithm",
            "summa",
            "--seed",
            "7",
        ])
        .unwrap()
        {
            Command::Supervise {
                input,
                listen,
                state_dir,
                ranks,
                max_restarts,
                backoff_ms,
                passthrough,
            } => {
                assert_eq!(input, "g500-s6");
                assert_eq!(listen, PathBuf::from("/tmp/tc.sock"));
                assert_eq!(state_dir, PathBuf::from("/tmp/fleet"));
                assert_eq!(ranks, 9);
                assert_eq!(max_restarts, 3);
                assert_eq!(backoff_ms, 50);
                assert_eq!(passthrough, vec!["--algorithm", "summa", "--seed", "7"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn supervise_requires_listen_state_dir_and_ranks() {
        assert!(p(&["supervise", "g500-s6", "--state-dir", "/tmp/f"]).is_err());
        assert!(p(&["supervise", "g500-s6", "--listen", "/tmp/a"]).is_err());
        assert!(p(&[
            "supervise",
            "g500-s6",
            "--listen",
            "/tmp/a",
            "--state-dir",
            "/tmp/f",
            "--ranks",
            "0",
        ])
        .is_err());
        // Unknown flags before `--` are rejected; after it they pass.
        assert!(p(&[
            "supervise",
            "g500-s6",
            "--listen",
            "/tmp/a",
            "--state-dir",
            "/tmp/f",
            "--bogus",
        ])
        .is_err());
        assert!(p(&[
            "supervise",
            "g500-s6",
            "--listen",
            "/tmp/a",
            "--state-dir",
            "/tmp/f",
            "--",
            "--bogus",
        ])
        .is_ok());
    }

    #[test]
    fn query_builds_protocol_lines() {
        match p(&["query", "/tmp/tc.sock", "count"]).unwrap() {
            Command::Query { socket, request, timeout_ms } => {
                assert_eq!(socket, PathBuf::from("/tmp/tc.sock"));
                assert_eq!(request, "{\"op\":\"count\"}");
                assert_eq!(timeout_ms, 10_000);
            }
            other => panic!("{other:?}"),
        }
        match p(&["query", "/tmp/tc.sock", "support", "3", "9", "--timeout-ms", "50"]).unwrap() {
            Command::Query { request, timeout_ms, .. } => {
                assert_eq!(request, "{\"op\":\"support\",\"u\":3,\"v\":9}");
                assert_eq!(timeout_ms, 50);
            }
            other => panic!("{other:?}"),
        }
        match p(&["query", "/tmp/tc.sock", "truss", "4"]).unwrap() {
            Command::Query { request, .. } => {
                assert_eq!(request, "{\"op\":\"truss\",\"k\":4}")
            }
            other => panic!("{other:?}"),
        }
        match p(&["query", "/tmp/tc.sock", "update", "--insert", "1:2,3:4", "--delete", "5:6"])
            .unwrap()
        {
            Command::Query { request, .. } => {
                assert_eq!(
                    request,
                    "{\"op\":\"update\",\"insert\":[[1,2],[3,4]],\"delete\":[[5,6]]}"
                )
            }
            other => panic!("{other:?}"),
        }
        match p(&["query", "/tmp/tc.sock", "raw", "{\"op\":\"stats\"}"]).unwrap() {
            Command::Query { request, .. } => assert_eq!(request, "{\"op\":\"stats\"}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn query_rejects_malformed_invocations() {
        assert!(p(&["query", "/tmp/tc.sock"]).is_err());
        assert!(p(&["query", "/tmp/tc.sock", "warp"]).is_err());
        assert!(p(&["query", "/tmp/tc.sock", "support", "3"]).is_err());
        assert!(p(&["query", "/tmp/tc.sock", "update"]).is_err());
        assert!(p(&["query", "/tmp/tc.sock", "update", "--insert", "1-2"]).is_err());
        // --insert belongs to update only.
        assert!(p(&["query", "/tmp/tc.sock", "count", "--insert", "1:2"]).is_err());
    }

    #[test]
    fn benchdiff_passes_raw_args_through() {
        match p(&["benchdiff", "base.json", "cand.json", "--tol", "0.1"]).unwrap() {
            Command::BenchDiff { args } => {
                assert_eq!(args, vec!["base.json", "cand.json", "--tol", "0.1"])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn perftrend_passes_raw_args_through() {
        match p(&["perftrend", "results/BENCH_HISTORY.jsonl", "--last", "10", "--html", "t.html"])
            .unwrap()
        {
            Command::PerfTrend { args } => {
                assert_eq!(
                    args,
                    vec!["results/BENCH_HISTORY.jsonl", "--last", "10", "--html", "t.html"]
                )
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tracecheck_parses() {
        match p(&["tracecheck", "run.json"]).unwrap() {
            Command::TraceCheck { file } => assert_eq!(file, PathBuf::from("run.json")),
            other => panic!("{other:?}"),
        }
        assert!(p(&["tracecheck"]).is_err());
        assert!(p(&["tracecheck", "a", "b"]).is_err());
    }

    #[test]
    fn kernel_flag_parses_on_all_counting_commands() {
        match p(&["count", "g500-s8", "--kernel", "bitmap"]).unwrap() {
            Command::Count { config, .. } => assert_eq!(config.kernel, KernelStrategy::Bitmap),
            other => panic!("{other:?}"),
        }
        match p(&["serve-rank", "g500-s6", "--kernel", "merge"]).unwrap() {
            Command::ServeRank { config, .. } => assert_eq!(config.kernel, KernelStrategy::Merge),
            other => panic!("{other:?}"),
        }
        match p(&["serve", "g500-s6", "--listen", "/tmp/a", "--kernel", "hash"]).unwrap() {
            Command::Serve { config, .. } => assert_eq!(config.kernel, KernelStrategy::Hash),
            other => panic!("{other:?}"),
        }
        // Default without flag or env: auto.
        match p(&["count", "g500-s8"]).unwrap() {
            Command::Count { config, .. } => assert_eq!(config.kernel, KernelStrategy::Auto),
            other => panic!("{other:?}"),
        }
        assert!(p(&["count", "g500-s8", "--kernel"]).is_err());
        assert!(p(&["count", "g500-s8", "--kernel", "simd"]).is_err());
        assert!(p(&["count", "g500-s8", "--kernel", "Bitmap"]).is_err(), "strict: no case folding");
    }

    #[test]
    fn kernel_env_seeds_default_and_flag_wins() {
        let pe = |args: &[&str], env: Option<KernelStrategy>| {
            parse_with_env(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>(), env)
        };
        // Env alone sets the strategy.
        match pe(&["count", "g500-s8"], Some(KernelStrategy::Merge)).unwrap() {
            Command::Count { config, .. } => assert_eq!(config.kernel, KernelStrategy::Merge),
            other => panic!("{other:?}"),
        }
        // An explicit flag overrides the env default.
        match pe(&["count", "g500-s8", "--kernel", "hash"], Some(KernelStrategy::Merge)).unwrap() {
            Command::Count { config, .. } => assert_eq!(config.kernel, KernelStrategy::Hash),
            other => panic!("{other:?}"),
        }
        // The env seed reaches the service commands too.
        match pe(&["serve-rank", "g500-s6"], Some(KernelStrategy::Bitmap)).unwrap() {
            Command::ServeRank { config, .. } => assert_eq!(config.kernel, KernelStrategy::Bitmap),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unknowns() {
        assert!(p(&["count", "g500-s8", "--bogus"]).is_err());
        assert!(p(&["count", "g500-s8", "--algorithm", "magic"]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["generate", "not-a-preset", "--out", "x"]).is_err());
    }
}
