//! `tricount` — command-line triangle counting.
//!
//! A thin front end over the workspace: load or generate a graph, run
//! any of the eight counting algorithms, print counts, phase times,
//! and (optionally) clustering statistics.

mod cli;

use std::time::Instant;

use cli::{Algorithm, Command, Input, USAGE};
use tc_graph::{io, Csr, EdgeList};

/// Per-link fault probability installed by `--chaos SEED` (each of the
/// six fault modes fires independently at this rate).
const CHAOS_P: f64 = 0.05;

/// Why a command failed, mapped to distinct process exit codes so
/// scripted callers can tell a bad input graph (3) from a runtime
/// failure (1) or a usage error (2).
enum AppError {
    /// The input graph was unreadable or structurally invalid.
    Input(String),
    /// Anything else that went wrong while running the command.
    Run(String),
}

impl From<String> for AppError {
    fn from(msg: String) -> Self {
        AppError::Run(msg)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // TC_KERNEL seeds the kernel-strategy default (strict parse: an
    // invalid value panics here, before any work); --kernel overrides.
    match cli::parse_with_env(&args, tc_core::KernelStrategy::from_env()) {
        Ok(cmd) => match run(cmd) {
            Ok(()) => {}
            Err(AppError::Input(msg)) => {
                eprintln!("input error: {msg}");
                std::process::exit(3);
            }
            Err(AppError::Run(msg)) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn load(input: &Input, seed: u64) -> Result<EdgeList, AppError> {
    match input {
        Input::Preset(p) => {
            eprintln!("# generating {}", p.name());
            Ok(p.build(seed))
        }
        Input::File(path) => {
            let ctx =
                |e: &dyn std::fmt::Display| AppError::Input(format!("{}: {e}", path.display()));
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            let el = match ext {
                "mtx" => io::read_matrix_market(std::fs::File::open(path).map_err(|e| ctx(&e))?),
                "bin" => io::read_binary_edges_path(path),
                _ => io::read_text_edges_path(path),
            }
            .map_err(|e| ctx(&e))?;
            Ok(el.simplify())
        }
    }
}

fn run(cmd: Command) -> Result<(), AppError> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Truss { input, ranks, seed } => {
            let el = load(&input, seed)?;
            eprintln!("# {} vertices, {} edges", el.num_vertices, el.num_edges());
            let d = tc_apps::truss_decomposition_dist(&el, ranks);
            println!("max trussness : {}", d.max_truss);
            println!("peel rounds   : {}", d.rounds);
            println!("time          : {:.3?}", d.time);
            let mut hist = vec![0usize; d.max_truss as usize + 1];
            for &t in &d.trussness {
                hist[t as usize] += 1;
            }
            for (k, c) in hist.iter().enumerate().skip(2) {
                if *c > 0 {
                    println!("  trussness {k:>3}: {c} edges");
                }
            }
            Ok(())
        }
        Command::Info { input } => {
            let el = load(&input, tc_gen::DEFAULT_SEED)?;
            let csr = Csr::from_edge_list(&el);
            println!("vertices      : {}", el.num_vertices);
            println!("edges         : {}", el.num_edges());
            println!("max degree    : {}", csr.max_degree());
            println!("avg degree    : {:.2}", tc_graph::stats::average_degree(&csr));
            println!("wedges        : {}", tc_graph::stats::total_wedges(&csr));
            Ok(())
        }
        Command::Generate { preset, seed, output } => {
            let el = preset.build(seed);
            let ext = output.extension().and_then(|e| e.to_str()).unwrap_or("");
            if ext == "bin" {
                io::write_binary_edges_path(&el, &output).map_err(|e| e.to_string())?;
            } else {
                io::write_text_edges(
                    &el,
                    std::fs::File::create(&output).map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?;
            }
            println!(
                "wrote {} ({} vertices, {} edges)",
                output.display(),
                el.num_vertices,
                el.num_edges()
            );
            Ok(())
        }
        Command::Count {
            input,
            algorithm,
            ranks,
            grid,
            config,
            seed,
            stats,
            trace,
            metrics,
            chaos,
        } => {
            let el = load(&input, seed)?;
            eprintln!("# {} vertices, {} edges", el.num_vertices, el.num_edges());
            let session = trace.as_ref().map(|_| tc_trace::TraceSession::begin());
            let handle = session.as_ref().map(|s| s.handle());
            let msession = metrics.as_ref().map(|_| tc_metrics::MetricsSession::begin());
            let mhandle = msession.as_ref().map(|s| s.handle());
            let plan = chaos.map(|cseed| {
                eprintln!("# chaos: seed {cseed}, uniform p={CHAOS_P} on every link");
                tc_mps::FaultPlan::new(cseed).with_default(tc_mps::LinkFaults::uniform(CHAOS_P))
            });
            let obs = tc_mps::Observe {
                trace: handle.as_ref(),
                metrics: mhandle.as_ref(),
                chaos: plan.as_ref(),
            };
            let t0 = Instant::now();
            let triangles = match algorithm {
                Algorithm::TwoD => {
                    let r = tc_core::try_count_triangles_observed(&el, ranks, &config, obs)
                        .map_err(|e| e.to_string())?;
                    println!("preprocessing : {:.3?}", r.ppt_time());
                    println!("counting      : {:.3?}", r.tct_time());
                    println!("tasks         : {}", r.total_tasks());
                    println!("bytes sent    : {}", r.total_bytes_sent());
                    r.triangles
                }
                Algorithm::Summa => {
                    let g = cli::summa_grid(grid.expect("grid derived at parse time"));
                    let r = tc_core::try_count_triangles_summa_observed(&el, g, &config, obs)
                        .map_err(|e| e.to_string())?;
                    println!("grid          : {}x{} ({} panels)", g.pr, g.pc, g.panels);
                    println!("preprocessing : {:.3?}", r.ppt_time());
                    println!("counting      : {:.3?}", r.tct_time());
                    r.triangles
                }
                Algorithm::Serial => tc_baselines::serial::count_default(&el),
                Algorithm::Shared => tc_baselines::count_shared(&el, ranks),
                Algorithm::Aop => {
                    let r = tc_baselines::try_count_aop1d_observed(&el, ranks, obs)
                        .map_err(|e| e.to_string())?;
                    println!("setup         : {:.3?}", r.setup);
                    println!("counting      : {:.3?}", r.count);
                    println!("ghost entries : {}", r.max_ghost_entries);
                    r.triangles
                }
                Algorithm::Push => {
                    tc_baselines::try_count_push1d_observed(&el, ranks, obs)
                        .map_err(|e| e.to_string())?
                        .triangles
                }
                Algorithm::Psp => {
                    tc_baselines::try_count_psp1d_observed(&el, ranks, 8, obs)
                        .map_err(|e| e.to_string())?
                        .triangles
                }
                Algorithm::Wedge => {
                    let r = tc_baselines::try_count_wedge_observed(&el, ranks, obs)
                        .map_err(|e| e.to_string())?;
                    println!("2-core        : {:.3?} ({} peeled)", r.two_core, r.peeled);
                    println!("wedge check   : {:.3?} ({} wedges)", r.wedge_count, r.wedges);
                    r.triangles
                }
            };
            println!("total time    : {:.3?}", t0.elapsed());
            println!("triangles     : {triangles}");
            if stats {
                let csr = Csr::from_edge_list(&el);
                println!("transitivity  : {:.6}", tc_graph::stats::transitivity(&csr, triangles));
            }
            let snapshot = msession.map(|s| s.finish());
            if let (Some(snap), Some(path)) = (&snapshot, &metrics) {
                std::fs::write(path, format!("{}\n", snap.to_json()))
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                eprintln!(
                    "# metrics: {} rank registries -> {}",
                    snap.ranks().len(),
                    path.display()
                );
            }
            if let (Some(session), Some(path)) = (session, trace) {
                let tr = session.finish();
                let snap_json = snapshot.as_ref().map(|s| s.to_json());
                let meta: Vec<(&str, &str)> =
                    snap_json.iter().map(|j| ("tcMetrics", j.as_str())).collect();
                tc_trace::chrome::write_chrome_json_with_metadata(&tr, &path, &meta)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let analysis = tc_trace::analysis::analyze(&tr)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                eprintln!(
                    "# trace: {} events ({} dropped) -> {}",
                    tr.events.len(),
                    tr.dropped,
                    path.display()
                );
                eprint!("{}", analysis.report());
            }
            Ok(())
        }
        Command::ServeRank {
            input,
            rank,
            peers,
            epoch,
            algorithm,
            grid,
            config,
            seed,
            chaos,
            metrics,
            trace,
        } => {
            let el = load(&input, seed)?;
            // Flags win; otherwise the MPS_FABRIC_* environment names
            // this process's place in the mesh.
            let mut sock = match (rank, peers) {
                (Some(rank), Some(peers)) => {
                    let peers: Vec<String> = peers
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if rank >= peers.len() {
                        return Err(AppError::Run(format!(
                            "--rank {rank} is out of range of the {} endpoints in --peers",
                            peers.len()
                        )));
                    }
                    let mut sock = tc_mps::SocketConfig::new(rank, peers);
                    sock.epoch = epoch.unwrap_or(0);
                    sock
                }
                _ => {
                    let mut sock = tc_mps::SocketConfig::from_env().ok_or_else(|| {
                        AppError::Run(format!(
                            "serve-rank needs --rank/--peers or the {}/{} environment",
                            tc_mps::FABRIC_RANK_ENV,
                            tc_mps::FABRIC_PEERS_ENV
                        ))
                    })?;
                    if let Some(e) = epoch {
                        sock.epoch = e;
                    }
                    sock
                }
            };
            let p = sock.peers.len();
            eprintln!(
                "# rank {}/{p}: {} vertices, {} edges",
                sock.rank,
                el.num_vertices,
                el.num_edges()
            );
            let msession = metrics.as_ref().map(|_| tc_metrics::MetricsSession::begin());
            sock.universe.metrics = msession.as_ref().map(|s| s.handle());
            let tsession = trace.as_ref().map(|_| tc_trace::TraceSession::begin());
            sock.universe.trace = tsession.as_ref().map(|s| s.handle());
            if let Some(cseed) = chaos {
                eprintln!("# chaos: seed {cseed}, uniform p={CHAOS_P} on every link");
                sock.universe.chaos = Some(
                    tc_mps::FaultPlan::new(cseed)
                        .with_default(tc_mps::LinkFaults::uniform(CHAOS_P)),
                );
            }
            let t0 = Instant::now();
            let triangles = match algorithm {
                Algorithm::TwoD => {
                    let (t, m) = tc_core::try_count_triangles_socket(&el, &config, &sock)
                        .map_err(|e| e.to_string())?;
                    println!("preprocessing : {:.3?}", m.ppt);
                    println!("counting      : {:.3?}", m.tct);
                    println!("tasks         : {}", m.tasks);
                    println!("bytes sent    : {}", m.bytes_sent);
                    t
                }
                Algorithm::Summa => {
                    let g = grid.map(cli::summa_grid).unwrap_or_else(|| {
                        // Same near-square derivation as `count`.
                        let r = (p as f64).sqrt() as usize;
                        let r = (1..=r.max(1)).rev().find(|d| p % d == 0).unwrap_or(1);
                        cli::summa_grid((r, p / r))
                    });
                    let (t, m) = tc_core::try_count_triangles_summa_socket(&el, g, &config, &sock)
                        .map_err(|e| e.to_string())?;
                    println!("grid          : {}x{} ({} panels)", g.pr, g.pc, g.panels);
                    println!("preprocessing : {:.3?}", m.ppt);
                    println!("counting      : {:.3?}", m.tct);
                    t
                }
                _ => unreachable!("parser admits only socket-distributed algorithms"),
            };
            println!("rank          : {}/{p}", sock.rank);
            println!("total time    : {:.3?}", t0.elapsed());
            println!("triangles     : {triangles}");
            if let (Some(session), Some(path)) = (msession, &metrics) {
                let snap = session.finish();
                std::fs::write(path, format!("{}\n", snap.to_json()))
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                eprintln!("# metrics: rank {} -> {}", sock.rank, path.display());
            }
            if let (Some(session), Some(path)) = (tsession, &trace) {
                // One lane: this process's rank (fabric connect and
                // handshake spans included).
                let tr = session.finish();
                tc_trace::chrome::write_chrome_json(&tr, path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                eprintln!(
                    "# trace: rank {}, {} events ({} dropped) -> {}",
                    sock.rank,
                    tr.events.len(),
                    tr.dropped,
                    path.display()
                );
            }
            Ok(())
        }
        Command::Serve {
            input,
            listen,
            ranks,
            rank,
            peers,
            epoch,
            algorithm,
            grid,
            config,
            seed,
            chaos,
            metrics,
            json,
            flush_ms,
            max_batch,
            queue,
            tick_ms,
            state_dir,
        } => {
            let el = load(&input, seed)?;
            let csr = Csr::from_edge_list(&el);
            // A crash-recoverable fleet (--state-dir) always meters:
            // the rejoin/degraded counters are its observability
            // surface, and the `metrics` query would otherwise serve
            // an empty exposition.
            let msession = (metrics.is_some() || json.is_some() || state_dir.is_some())
                .then(tc_metrics::MetricsSession::begin);
            let mhandle = msession.as_ref().map(|s| s.handle());
            let plan = chaos.map(|cseed| {
                eprintln!("# chaos: seed {cseed}, uniform p={CHAOS_P} on every link");
                tc_mps::FaultPlan::new(cseed).with_default(tc_mps::LinkFaults::uniform(CHAOS_P))
            });
            // Socket mode iff --rank/--peers or the MPS_FABRIC_*
            // environment names this process's place in a fleet;
            // otherwise --ranks in-process threads.
            let sock = match (rank, peers) {
                (Some(rank), Some(peers)) => {
                    let peers: Vec<String> = peers
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if rank >= peers.len() {
                        return Err(AppError::Run(format!(
                            "--rank {rank} is out of range of the {} endpoints in --peers",
                            peers.len()
                        )));
                    }
                    Some(tc_mps::SocketConfig::new(rank, peers))
                }
                _ => tc_mps::SocketConfig::from_env(),
            };
            let p = sock.as_ref().map(|s| s.peers.len()).unwrap_or(ranks);
            let algo = match algorithm {
                Algorithm::TwoD => {
                    if tc_mps::perfect_square_side(p).is_none() {
                        return Err(AppError::Run(format!(
                            "the 2d kernel needs a perfect-square fleet, got {p} ranks \
                             (use --algorithm summa --grid RxC for rectangles)"
                        )));
                    }
                    tc_serve::Algo::Cannon
                }
                Algorithm::Summa => {
                    let g = grid.map(cli::summa_grid).unwrap_or_else(|| {
                        // Same near-square derivation as `count`.
                        let r = (p as f64).sqrt() as usize;
                        let r = (1..=r.max(1)).rev().find(|d| p % d == 0).unwrap_or(1);
                        cli::summa_grid((r, p / r))
                    });
                    tc_serve::Algo::Summa(g)
                }
                _ => unreachable!("parser admits only fleet algorithms"),
            };
            let mut scfg = tc_serve::ServeConfig::new(listen).env_overrides();
            scfg.algo = algo;
            scfg.tc = config;
            scfg.metrics = mhandle.clone();
            if let Some(v) = flush_ms {
                scfg.flush_ms = v;
            }
            if let Some(v) = max_batch {
                scfg.max_batch = v.max(1);
            }
            if let Some(v) = queue {
                scfg.queue = v.max(1);
            }
            if let Some(v) = tick_ms {
                scfg.tick_ms = v.max(1);
            }
            eprintln!("# serving {} vertices, {} edges", el.num_vertices, el.num_edges());
            let (my_rank, report) = match sock {
                Some(mut sock) => {
                    if let Some(e) = epoch {
                        sock.epoch = e;
                    }
                    sock.universe.metrics = mhandle;
                    sock.universe.chaos = plan;
                    if sock.rank == 0 {
                        eprintln!("# rank 0/{p}: frontend on {}", scfg.listen.display());
                    } else {
                        eprintln!("# rank {}/{p}: peer loop", sock.rank);
                    }
                    let report = match &state_dir {
                        Some(dir) => {
                            // Crash-recoverable fleet: rank-local
                            // durability, epoch rejoin, degraded mode.
                            let fleet = tc_serve::FleetConfig::new(dir.clone()).env_overrides();
                            tc_serve::serve_fleet(&csr, &scfg, &sock, &fleet)
                                .map_err(|e| e.to_string())?
                        }
                        None => {
                            let (report, _stats) =
                                tc_mps::Universe::try_run_socket(&sock, |comm| {
                                    tc_serve::serve_rank(comm, &csr, &scfg)
                                })
                                .map_err(|e| e.to_string())?;
                            report
                        }
                    };
                    (sock.rank, report)
                }
                None if state_dir.is_some() => {
                    return Err(AppError::Run(
                        "--state-dir needs socket mode (give --rank/--peers or run under \
                         `tricount supervise`); in-process fleets share one address space \
                         and cannot lose a single rank"
                            .into(),
                    ));
                }
                None => {
                    eprintln!("# frontend on {} over {p} in-process ranks", scfg.listen.display());
                    let ucfg = tc_mps::UniverseConfig {
                        metrics: mhandle,
                        chaos: plan,
                        ..Default::default()
                    };
                    let (mut reports, _stats) =
                        tc_mps::Universe::try_run_config(p, &ucfg, |comm| {
                            tc_serve::serve_rank(comm, &csr, &scfg)
                        })
                        .map_err(|e| e.to_string())?;
                    (0, reports.swap_remove(0))
                }
            };
            // Peers report zeros for the frontend tallies; every rank
            // reports the (replicated) final count.
            if my_rank == 0 {
                println!("batches       : {}", report.batches);
                println!("queries       : {}", report.queries);
                println!("rejected      : {}", report.rejected);
                println!("full recounts : {}", report.full_recounts);
            }
            println!("rank          : {my_rank}/{p}");
            println!("triangles     : {}", report.triangles);
            if let Some(session) = msession {
                let snap = session.finish();
                if let Some(path) = &metrics {
                    std::fs::write(path, format!("{}\n", snap.to_json()))
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    eprintln!(
                        "# metrics: {} rank registries -> {}",
                        snap.ranks().len(),
                        path.display()
                    );
                }
                // The sustained-workload analogue of a bench run: one
                // tc-run-v2 line keyed by `<dataset>/<algo>/pN/serve`,
                // comparable with `tricount benchdiff`. Only rank 0
                // writes it (in socket mode the snapshot holds this
                // process's registry; the frontend tallies live there).
                if let (0, Some(path)) = (my_rank, &json) {
                    let dataset = match &input {
                        Input::Preset(pr) => pr.name(),
                        Input::File(f) => {
                            f.file_stem().and_then(|s| s.to_str()).unwrap_or("file").to_string()
                        }
                    };
                    let algo_name = match algorithm {
                        Algorithm::Summa => "summa",
                        _ => "2d-cannon",
                    };
                    let rec = tc_metrics::RunRecord::from_snapshot(
                        &dataset,
                        algo_name,
                        p as u64,
                        "serve",
                        report.triangles,
                        &snap,
                    );
                    use std::io::Write as _;
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                        .and_then(|mut f| writeln!(f, "{}", rec.to_json_line()))
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    eprintln!("# run record: {} -> {}", rec.key(), path.display());
                }
            }
            Ok(())
        }
        Command::Supervise {
            input,
            listen,
            state_dir,
            ranks,
            max_restarts,
            backoff_ms,
            passthrough,
        } => {
            let program =
                std::env::current_exe().map_err(|e| format!("cannot locate my own binary: {e}"))?;
            let peers = tc_serve::supervisor::fleet_endpoints(&state_dir, ranks).join(",");
            let mut serve_args = vec![
                "serve".to_string(),
                input,
                "--listen".to_string(),
                listen.display().to_string(),
                "--state-dir".to_string(),
                state_dir.display().to_string(),
                "--peers".to_string(),
                peers,
            ];
            serve_args.extend(passthrough);
            let cfg = tc_serve::SupervisorConfig {
                program,
                serve_args,
                state_dir,
                ranks,
                max_restarts,
                backoff_base_ms: backoff_ms,
                backoff_cap_ms: backoff_ms.saturating_mul(64).max(backoff_ms),
            };
            eprintln!(
                "# supervising {ranks} ranks under {} (restart budget {max_restarts})",
                cfg.state_dir.display()
            );
            match tc_serve::supervise(&cfg).map_err(|e| format!("supervisor: {e}"))? {
                tc_serve::SuperviseOutcome::FrontendExited(0) => Ok(()),
                tc_serve::SuperviseOutcome::FrontendExited(code) => {
                    Err(AppError::Run(format!("rank 0 exited with code {code}")))
                }
                tc_serve::SuperviseOutcome::BudgetExhausted { rank, restarts } => {
                    Err(AppError::Run(format!(
                        "fleet dead: rank {rank} crashed past the restart budget \
                         ({restarts} crashes, budget {max_restarts})"
                    )))
                }
            }
        }
        Command::Query { socket, request, timeout_ms } => {
            let mut client = tc_serve::Client::connect_retry(
                &socket,
                std::time::Duration::from_millis(timeout_ms),
            )
            .map_err(|e| format!("{}: {e}", socket.display()))?;
            let reply = client.request_raw(&request).map_err(|e| e.to_string())?;
            println!("{reply}");
            let v = tc_metrics::json::parse(&reply).ok();
            let ok = v
                .as_ref()
                .is_some_and(|v| matches!(v.get("ok"), Some(tc_metrics::json::Value::Bool(true))));
            if ok {
                return Ok(());
            }
            // A degraded reply is an availability signal, not a
            // protocol failure: its own exit code lets scripted
            // callers branch on "retry later" without parsing JSON.
            let degraded = v.as_ref().is_some_and(|v| {
                v.get("error").and_then(tc_metrics::json::Value::as_str)
                    == Some(tc_serve::proto::ERR_DEGRADED)
            });
            if degraded {
                std::process::exit(4);
            }
            Err(AppError::Run("the service replied with an error (reply above)".into()))
        }
        Command::BenchDiff { args } => {
            std::process::exit(tc_metrics::diff::cli_main(&args));
        }
        Command::PerfTrend { args } => {
            std::process::exit(tc_metrics::trend::cli_main(&args));
        }
        Command::TraceCheck { file } => {
            let text =
                std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            let summary = tc_trace::chrome::validate(&text)
                .map_err(|e| format!("{}: invalid trace: {e}", file.display()))?;
            println!("lanes   : {} ranks {:?}", summary.ranks.len(), summary.ranks);
            println!("spans   : {}", summary.spans);
            println!("instants: {}", summary.instants);
            for (name, n) in &summary.spans_by_name {
                println!("  {name:<18} {n}");
            }
            Ok(())
        }
    }
}
