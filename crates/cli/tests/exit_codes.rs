//! End-to-end exit-code contract of the `tricount` binary:
//! 0 success, 1 runtime failure, 2 usage error, 3 invalid input graph.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tricount() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tricount"))
}

fn run(args: &[&str]) -> Output {
    tricount().args(args).output().expect("spawn tricount")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tricount-exit-{}-{name}", std::process::id()));
    p
}

#[test]
fn success_is_exit_zero() {
    let out = run(&["count", "g500-s5", "--ranks", "4"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("triangles"), "{}", stdout(&out));
}

#[test]
fn usage_error_is_exit_two() {
    let out = run(&["count", "g500-s5", "--bogus-flag"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("USAGE"), "{}", stderr(&out));
}

#[test]
fn missing_input_file_is_exit_three() {
    let out = run(&["count", "/nonexistent/graph.bin"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("input error"), "{}", stderr(&out));
}

#[test]
fn truncated_binary_input_is_exit_three_with_offset() {
    let el = tc_graph::EdgeList::new(10, vec![(0, 1), (2, 3), (4, 5)]);
    let mut buf = Vec::new();
    tc_graph::io::write_binary_edges(&el, &mut buf).unwrap();
    buf.truncate(buf.len() - 3);
    let path = tmp("truncated.bin");
    std::fs::write(&path, &buf).unwrap();
    let out = run(&["count", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let e = stderr(&out);
    assert!(e.contains("input error"), "{e}");
    assert!(e.contains("corrupt binary at byte"), "{e}");
    assert!(e.contains("edge 2 of 3"), "{e}");
}

#[test]
fn malformed_text_input_is_exit_three_with_line() {
    let path = tmp("bad.txt");
    std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
    let out = run(&["count", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
}

#[test]
fn chaos_flag_still_counts_exactly() {
    let clean = run(&["count", "g500-s5", "--ranks", "4", "--seed", "7"]);
    assert_eq!(clean.status.code(), Some(0), "{}", stderr(&clean));
    let chaotic = run(&["count", "g500-s5", "--ranks", "4", "--seed", "7", "--chaos", "3"]);
    assert_eq!(chaotic.status.code(), Some(0), "{}", stderr(&chaotic));
    let line = |s: &str| {
        s.lines().find(|l| l.starts_with("triangles")).map(str::to_string).expect("triangles line")
    };
    assert_eq!(line(&stdout(&chaotic)), line(&stdout(&clean)));
    assert!(stderr(&chaotic).contains("# chaos: seed 3"), "{}", stderr(&chaotic));
}

#[test]
fn kernel_strategies_all_count_exactly() {
    let line = |s: &str| {
        s.lines().find(|l| l.starts_with("triangles")).map(str::to_string).expect("triangles line")
    };
    let base = run(&["count", "g500-s5", "--ranks", "4", "--seed", "7", "--kernel", "hash"]);
    assert_eq!(base.status.code(), Some(0), "{}", stderr(&base));
    for kernel in ["auto", "merge", "bitmap"] {
        let out = run(&["count", "g500-s5", "--ranks", "4", "--seed", "7", "--kernel", kernel]);
        assert_eq!(out.status.code(), Some(0), "--kernel {kernel}: {}", stderr(&out));
        assert_eq!(line(&stdout(&out)), line(&stdout(&base)), "--kernel {kernel}");
    }
}

#[test]
fn kernel_env_seeds_the_run_and_garbage_aborts_loudly() {
    // A valid TC_KERNEL is accepted and the run still counts exactly.
    let ok = tricount()
        .args(["count", "g500-s5", "--ranks", "4", "--seed", "7"])
        .env("TC_KERNEL", "merge")
        .output()
        .expect("spawn tricount");
    assert_eq!(ok.status.code(), Some(0), "{}", stderr(&ok));
    // Garbage must abort before any work, naming the variable (the
    // strict_env contract of the MPS_* family).
    let bad = tricount()
        .args(["count", "g500-s5", "--ranks", "4"])
        .env("TC_KERNEL", "warp-drive")
        .output()
        .expect("spawn tricount");
    assert_ne!(bad.status.code(), Some(0));
    assert!(stderr(&bad).contains("TC_KERNEL"), "{}", stderr(&bad));
}

#[test]
fn dead_link_from_env_is_runtime_exit_one() {
    let out = tricount()
        .args(["count", "g500-s5", "--ranks", "4"])
        .env("MPS_CHAOS_SEED", "1")
        .env("MPS_CHAOS_DROP", "1.0")
        .env("MPS_CHAOS_LINKS", "0->1")
        .env("MPS_CHAOS_MAX_RETRIES", "3")
        .output()
        .expect("spawn tricount");
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("delivery from rank 0"), "{}", stderr(&out));
}
