//! Multi-process smoke test: `tricount serve-rank` as 16 **real OS
//! processes** over Unix-domain sockets must agree with the in-process
//! `tricount count` on the exact triangle count — flags on half the
//! mesh, the `MPS_FABRIC_*` environment on the other half, and once
//! more under an injected chaos plan.

use std::process::{Child, Command, Output};

fn tricount() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tricount"))
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Extracts `triangles     : N` from a rank's stdout.
fn triangles_of(out: &Output) -> u64 {
    stdout(out)
        .lines()
        .find_map(|l| {
            l.strip_prefix("triangles")?.trim_start().strip_prefix(':')?.trim().parse().ok()
        })
        .unwrap_or_else(|| panic!("no triangle count in output:\n{}\n{}", stdout(out), stderr(out)))
}

fn endpoints(p: usize, label: &str) -> Vec<String> {
    let pid = std::process::id();
    (0..p)
        .map(|r| {
            std::env::temp_dir()
                .join(format!("tcs-{pid}-{label}-{r}.sock"))
                .to_string_lossy()
                .into_owned()
        })
        .collect()
}

/// Launches the full mesh, waits for every process, and returns the
/// unanimous triangle count.
fn run_mesh(p: usize, label: &str, extra: &[&str], via_env_for_odd_ranks: bool) -> u64 {
    let peers = endpoints(p, label);
    let peer_list = peers.join(",");
    let children: Vec<Child> = (0..p)
        .map(|rank| {
            let mut cmd = tricount();
            cmd.arg("serve-rank").arg("g500-s6").args(extra);
            if via_env_for_odd_ranks && rank % 2 == 1 {
                // Half the mesh addresses itself via the environment,
                // proving both configuration paths interoperate.
                cmd.env("MPS_FABRIC_RANK", rank.to_string());
                cmd.env("MPS_FABRIC_PEERS", &peer_list);
            } else {
                cmd.args(["--rank", &rank.to_string(), "--peers", &peer_list]);
            }
            cmd.stdout(std::process::Stdio::piped()).stderr(std::process::Stdio::piped());
            cmd.spawn().unwrap_or_else(|e| panic!("spawn rank {rank}: {e}"))
        })
        .collect();
    let outputs: Vec<Output> = children
        .into_iter()
        .enumerate()
        .map(|(rank, c)| {
            c.wait_with_output().unwrap_or_else(|e| panic!("wait for rank {rank}: {e}"))
        })
        .collect();
    for (rank, out) in outputs.iter().enumerate() {
        assert_eq!(
            out.status.code(),
            Some(0),
            "rank {rank} failed:\n{}\n{}",
            stdout(out),
            stderr(out)
        );
    }
    let counts: Vec<u64> = outputs.iter().map(triangles_of).collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "ranks disagree: {counts:?}");
    counts[0]
}

/// The in-process reference count for the same graph and rank count.
fn reference(p: usize) -> u64 {
    let out = tricount()
        .args(["count", "g500-s6", "--ranks", &p.to_string()])
        .output()
        .expect("spawn reference count");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    triangles_of(&out)
}

#[test]
fn sixteen_processes_match_in_process_count() {
    let expect = reference(16);
    let got = run_mesh(16, "clean", &[], true);
    assert_eq!(got, expect, "socket mesh diverged from the in-process count");
}

#[test]
fn sixteen_processes_exact_under_chaos() {
    let expect = reference(16);
    let got = run_mesh(16, "chaos", &["--chaos", "42"], false);
    assert_eq!(got, expect, "chaos over the socket wire changed the count");
}
