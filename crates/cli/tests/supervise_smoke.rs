//! Crash-recovery smoke test: `tricount supervise` runs a 4-process
//! fleet; a non-zero rank is SIGKILLed mid-workload. The supervisor
//! must respawn it at a bumped epoch, the respawned rank must restore
//! checkpoint + WAL and rejoin, rank 0 must keep answering (typed
//! `degraded` replies, exit code 4 from `tricount query`) through the
//! outage, and every post-recovery answer must match the serial
//! oracle with `full_recounts` still pinned at the cold start's 1.
//! A second scenario exhausts the restart budget and asserts the
//! fleet dies loudly. Logs land in
//! `$CARGO_TARGET_TMPDIR/supervise-smoke/` for CI artifact upload.

use std::collections::BTreeSet;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tc_graph::{Csr, EdgeList};
use tc_metrics::json::Value;
use tc_serve::supervisor::{read_epoch, read_pid, wait_for_respawn};
use tc_serve::{Client, Request};

fn tricount() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tricount"))
}

/// Fleet state directory (epoch file, rank logs, pid files) — doubles
/// as the CI artifact directory.
fn state_dir(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("supervise-smoke").join(label);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");
    dir
}

fn fleet_logs(dir: &Path) -> String {
    let mut out = String::new();
    for name in ["supervisor.log", "rank-0.log", "rank-1.log", "rank-2.log", "rank-3.log"] {
        out.push_str(&format!(
            "--- {name} ---\n{}",
            std::fs::read_to_string(dir.join(name)).unwrap_or_default()
        ));
    }
    out
}

/// Spawns `tricount supervise` with its own log file in the state dir.
fn spawn_supervisor(dir: &Path, frontend: &Path, max_restarts: u32, backoff_ms: u64) -> Child {
    let log = File::create(dir.join("supervisor.log")).expect("supervisor log");
    tricount()
        .args(["supervise", "g500-s6"])
        .args(["--listen", &frontend.to_string_lossy()])
        .args(["--state-dir", &dir.to_string_lossy()])
        .args(["--ranks", "4"])
        .args(["--max-restarts", &max_restarts.to_string()])
        .args(["--backoff-ms", &backoff_ms.to_string()])
        .args(["--", "--flush-ms", "10000", "--tick-ms", "200"])
        .stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone().expect("clone log")))
        .stderr(Stdio::from(log))
        .spawn()
        .expect("spawn supervisor")
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("u64 field '{key}' in {v:?}"))
}

/// Serial oracle over the reference edge set.
fn serial_triangles(n: usize, edges: &BTreeSet<(u32, u32)>) -> u64 {
    let el = EdgeList::new(n, edges.iter().copied().collect()).simplify();
    let csr = Csr::from_edge_list(&el);
    let mut t = 0u64;
    for &(u, v) in edges {
        let (nu, nv) = (csr.neighbors(u), csr.neighbors(v));
        t += nu.iter().filter(|&&w| w > v && nv.binary_search(&w).is_ok()).count() as u64;
    }
    t
}

/// The same graph every fleet process loads (`g500-s6`, default seed).
fn initial_edges() -> (usize, BTreeSet<(u32, u32)>) {
    let el = tc_gen::Preset::parse("g500-s6").expect("known preset").build(tc_gen::DEFAULT_SEED);
    (el.num_vertices, el.edges.iter().copied().collect())
}

/// Applies a deterministic update round to the reference set and the
/// service, then checks the served count against the oracle.
fn update_round(client: &mut Client, n: usize, reference: &mut BTreeSet<(u32, u32)>, round: u32) {
    let insert: Vec<(u32, u32)> = (0..3u32)
        .map(|i| {
            let u = (round * 7 + i * 3) % n as u32;
            let v = (u + 1 + round % 5) % n as u32;
            (u.min(v), u.max(v))
        })
        .filter(|&(u, v)| u != v)
        .collect();
    let delete = if round % 3 == 0 && !reference.is_empty() {
        vec![*reference.iter().nth(round as usize % reference.len()).expect("index in range")]
    } else {
        Vec::new()
    };
    for &e in &insert {
        reference.insert(e);
    }
    for &e in &delete {
        reference.remove(&e);
    }
    client.request(&Request::Update { insert, delete }).expect("update accepted");
    let reply = client.request(&Request::Count).expect("count after update");
    assert_eq!(
        u64_field(&reply, "triangles"),
        serial_triangles(n, reference),
        "served count drifted at round {round}"
    );
}

fn sigkill(pid: u32) {
    let status = Command::new("kill").args(["-9", &pid.to_string()]).status().expect("spawn kill");
    assert!(status.success(), "kill -9 {pid} failed");
}

/// Waits for the supervisor to exit, with a hard deadline so a hung
/// fleet fails the test instead of wedging CI.
fn wait_with_deadline(child: &mut Child, timeout: Duration, dir: &Path) -> i32 {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait supervisor") {
            return status.code().unwrap_or(-1);
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("supervisor did not exit within {timeout:?}:\n{}", fleet_logs(dir));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn supervised_fleet_survives_a_rank_kill() {
    let dir = state_dir("kill");
    let frontend = std::env::temp_dir().join(format!("tcsup-{}-kill.sock", std::process::id()));
    let mut sup = spawn_supervisor(&dir, &frontend, 4, 2000);
    let mut client = Client::connect_retry(&frontend, Duration::from_secs(120))
        .unwrap_or_else(|e| panic!("frontend never came up: {e}\n{}", fleet_logs(&dir)));

    let (n, mut reference) = initial_edges();
    let reply = client.request(&Request::Count).expect("cold count");
    assert_eq!(u64_field(&reply, "triangles"), serial_triangles(n, &reference));
    for round in 0..8 {
        update_round(&mut client, n, &mut reference, round);
    }

    // The crash: SIGKILL rank 1 via its recorded pid.
    let pid = read_pid(&dir, 1).expect("rank 1 pid file");
    sigkill(pid);

    // During the outage the frontend must answer, not hang: a stats
    // query (needs a collective) gets the typed `degraded` reply, and
    // `tricount query` maps it to exit code 4. The 2 s respawn
    // backoff keeps the window comfortably observable.
    let mut saw_exit_4 = false;
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let out = tricount()
            .args(["query", &frontend.to_string_lossy(), "stats", "--timeout-ms", "5000"])
            .output()
            .expect("spawn query");
        if out.status.code() == Some(4) {
            let text = String::from_utf8_lossy(&out.stdout);
            assert!(text.contains("\"degraded\""), "exit 4 must print the degraded reply: {text}");
            assert!(text.contains("retry_after_ms"), "degraded reply carries a retry hint: {text}");
            saw_exit_4 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(saw_exit_4, "never saw a degraded (exit 4) reply:\n{}", fleet_logs(&dir));

    // Degraded reads still answer from the last committed state, and
    // degraded writes queue for the rejoin instead of being dropped.
    let reply = client.request(&Request::Count).expect("degraded count answers");
    assert_eq!(u64_field(&reply, "triangles"), serial_triangles(n, &reference));
    let queued: Vec<(u32, u32)> = vec![(0, (n as u32) - 1), (1, (n as u32) - 2)];
    for &e in &queued {
        reference.insert(e);
    }
    client
        .request(&Request::Update { insert: queued, delete: vec![] })
        .expect("degraded update queues");

    // Recovery: same rank id, new pid, bumped epoch.
    assert!(
        wait_for_respawn(&dir, 1, pid, Duration::from_secs(60)),
        "rank 1 was never respawned:\n{}",
        fleet_logs(&dir)
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    let stats = loop {
        match client.request(&Request::Stats) {
            Ok(v) if u64_field(&v, "recoveries") >= 1 => break v,
            Ok(_) | Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(v) => panic!("rejoined but recoveries stayed 0: {v:?}\n{}", fleet_logs(&dir)),
            Err(e) => panic!("stats never recovered: {e}\n{}", fleet_logs(&dir)),
        }
    };
    // The queued writes flushed on the read barrier; nothing was lost
    // and nothing was recounted.
    assert_eq!(u64_field(&stats, "edges"), reference.len() as u64);
    assert_eq!(u64_field(&stats, "full_recounts"), 1, "recovery must not recount");
    assert_eq!(read_epoch(&dir), 1, "one crash, one epoch bump");

    // Post-recovery rounds stay exact.
    for round in 8..14 {
        update_round(&mut client, n, &mut reference, round);
    }

    client.request(&Request::Shutdown).expect("shutdown");
    let code = wait_with_deadline(&mut sup, Duration::from_secs(60), &dir);
    assert_eq!(code, 0, "clean shutdown after recovery:\n{}", fleet_logs(&dir));
}

#[test]
fn exhausted_restart_budget_kills_the_fleet_loudly() {
    let dir = state_dir("budget");
    let frontend = std::env::temp_dir().join(format!("tcsup-{}-budget.sock", std::process::id()));
    let mut sup = spawn_supervisor(&dir, &frontend, 0, 100);
    let mut client = Client::connect_retry(&frontend, Duration::from_secs(120))
        .unwrap_or_else(|e| panic!("frontend never came up: {e}\n{}", fleet_logs(&dir)));
    let (n, reference) = initial_edges();
    let reply = client.request(&Request::Count).expect("cold count");
    assert_eq!(u64_field(&reply, "triangles"), serial_triangles(n, &reference));

    sigkill(read_pid(&dir, 2).expect("rank 2 pid file"));

    let code = wait_with_deadline(&mut sup, Duration::from_secs(60), &dir);
    assert_ne!(code, 0, "a dead fleet must not exit cleanly");
    let logs = fleet_logs(&dir);
    assert!(logs.contains("restart budget"), "the failure must name the budget:\n{logs}");
}
