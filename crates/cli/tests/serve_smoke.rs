//! Multi-process service smoke test: `tricount serve` as 4 real OS
//! processes over Unix-domain sockets, driven through `tc_serve::Client`
//! with a sustained mixed workload — >100 incremental update batches
//! interleaved with count / support / truss / stats / metrics queries —
//! then cross-checked against the offline `tricount count` of the final
//! edge state. One run repeats under an injected chaos plan: the
//! reliable transport must keep every answer exact. Rank logs land in
//! `$CARGO_TARGET_TMPDIR/serve-smoke/` for CI artifact upload.

use std::collections::BTreeSet;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tc_graph::{Csr, EdgeList};
use tc_metrics::json::Value;
use tc_serve::{Client, Request};

fn tricount() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tricount"))
}

fn log_dir(label: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve-smoke").join(label);
    std::fs::create_dir_all(&dir).expect("create log dir");
    dir
}

fn endpoints(p: usize, label: &str) -> Vec<String> {
    let pid = std::process::id();
    (0..p)
        .map(|r| {
            std::env::temp_dir()
                .join(format!("tcs-{pid}-{label}-{r}.sock"))
                .to_string_lossy()
                .into_owned()
        })
        .collect()
}

/// Spawns the 4-process fleet; rank logs go to the artifact dir.
fn spawn_fleet(label: &str, frontend: &Path, extra: &[&str]) -> Vec<Child> {
    let p = 4usize;
    let peers = endpoints(p, label).join(",");
    let logs = log_dir(label);
    (0..p)
        .map(|rank| {
            let out = File::create(logs.join(format!("rank{rank}.out.log"))).expect("log file");
            let err = File::create(logs.join(format!("rank{rank}.err.log"))).expect("log file");
            tricount()
                .arg("serve")
                .arg("g500-s6")
                .args(["--listen", &frontend.to_string_lossy()])
                .args(["--rank", &rank.to_string(), "--peers", &peers])
                .args(["--flush-ms", "10000", "--tick-ms", "500"])
                .args(extra)
                .stdout(Stdio::from(out))
                .stderr(Stdio::from(err))
                .spawn()
                .unwrap_or_else(|e| panic!("spawn rank {rank}: {e}"))
        })
        .collect()
}

fn rank_log(label: &str, rank: usize) -> String {
    let logs = log_dir(label);
    let read = |n: &str| std::fs::read_to_string(logs.join(n)).unwrap_or_default();
    format!(
        "--- rank{rank}.out ---\n{}--- rank{rank}.err ---\n{}",
        read(&format!("rank{rank}.out.log")),
        read(&format!("rank{rank}.err.log"))
    )
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("u64 field '{key}' in {v:?}"))
}

/// Serial oracle over the reference edge set.
fn serial_triangles(n: usize, edges: &BTreeSet<(u32, u32)>) -> u64 {
    let el = EdgeList::new(n, edges.iter().copied().collect()).simplify();
    let csr = Csr::from_edge_list(&el);
    let mut t = 0u64;
    for &(u, v) in edges {
        let (nu, nv) = (csr.neighbors(u), csr.neighbors(v));
        t += nu.iter().filter(|&&w| w > v && nv.binary_search(&w).is_ok()).count() as u64;
    }
    t
}

/// The same graph every fleet process loads (`g500-s6`, default seed).
fn initial_edges() -> (usize, BTreeSet<(u32, u32)>) {
    let el = tc_gen::Preset::parse("g500-s6").expect("known preset").build(tc_gen::DEFAULT_SEED);
    (el.num_vertices, el.edges.iter().copied().collect())
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Offline cross-check: write the final edge state to a file and count
/// it with `tricount count`.
fn offline_count(label: &str, n: usize, edges: &BTreeSet<(u32, u32)>) -> u64 {
    let el = EdgeList::new(n, edges.iter().copied().collect()).simplify();
    let path = log_dir(label).join("final-edges.txt");
    tc_graph::io::write_text_edges(&el, File::create(&path).expect("edge file"))
        .expect("write final edge state");
    let out = tricount()
        .args(["count", &path.to_string_lossy(), "--ranks", "4"])
        .output()
        .expect("spawn offline count");
    assert_eq!(
        out.status.code(),
        Some(0),
        "offline count failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| {
            l.strip_prefix("triangles")?.trim_start().strip_prefix(':')?.trim().parse().ok()
        })
        .expect("no triangle count in offline output")
}

/// Drives the full mixed workload against a fleet and verifies every
/// checkpoint, the offline cross-check, and a clean shutdown.
fn drive(label: &str, extra: &[&str], rounds: usize) {
    let frontend = std::env::temp_dir().join(format!("tcq-{}-{label}.sock", std::process::id()));
    // Every rank gets --json but only rank 0 appends the run record.
    let report_path = log_dir(label).join("report.json");
    let _ = std::fs::remove_file(&report_path);
    let mut extra: Vec<String> = extra.iter().map(|s| s.to_string()).collect();
    extra.extend(["--json".to_string(), report_path.to_string_lossy().into_owned()]);
    let extra: Vec<&str> = extra.iter().map(String::as_str).collect();
    let children = spawn_fleet(label, &frontend, &extra);
    let mut client = Client::connect_retry(&frontend, Duration::from_secs(120))
        .unwrap_or_else(|e| panic!("frontend never came up: {e}\n{}", rank_log(label, 0)));

    let (n, mut reference) = initial_edges();
    let reply = client.request(&Request::Count).expect("cold count");
    assert_eq!(u64_field(&reply, "triangles"), serial_triangles(n, &reference));

    let mut rng = Lcg(0xC0FFEE ^ rounds as u64);
    for round in 0..rounds {
        let mut insert = Vec::new();
        let mut delete = Vec::new();
        for _ in 0..(1 + rng.next() % 6) {
            if rng.next() % 3 == 0 && !reference.is_empty() {
                let idx = rng.next() as usize % reference.len();
                delete.push(*reference.iter().nth(idx).expect("index in range"));
            } else {
                let (u, v) = ((rng.next() % n as u64) as u32, (rng.next() % n as u64) as u32);
                if u != v {
                    insert.push((u.min(v), u.max(v)));
                }
            }
        }
        if insert.is_empty() && delete.is_empty() {
            insert.push((0, 1 + (round as u32 % 9)));
        }
        for &e in &insert {
            reference.insert(e);
        }
        for &e in &delete {
            reference.remove(&e);
        }
        client.request(&Request::Update { insert, delete }).expect("update accepted");
        // The count's read barrier applies the buffer as one batch and
        // must land exactly on the serial oracle, every round.
        let reply = client.request(&Request::Count).expect("count after update");
        assert_eq!(
            u64_field(&reply, "triangles"),
            serial_triangles(n, &reference),
            "served count drifted at round {round} ({label})"
        );
        // Interleave the other read queries across the stream.
        match round % 10 {
            3 => {
                let &(u, v) = reference.iter().next().expect("edges remain");
                let reply = client.request(&Request::Support { u, v }).expect("support");
                assert_eq!(reply.get("present"), Some(&Value::Bool(true)));
            }
            5 => {
                let reply = client.request(&Request::Truss { k: 3 }).expect("truss");
                assert!(reply.get("edges").and_then(Value::as_arr).is_some());
            }
            7 => {
                let reply = client.request(&Request::Stats).expect("stats");
                assert_eq!(u64_field(&reply, "edges"), reference.len() as u64);
                assert_eq!(u64_field(&reply, "full_recounts"), 1, "hot path recounted!");
            }
            9 => {
                client.request(&Request::Metrics).expect("metrics");
            }
            _ => {}
        }
    }

    // Checkpoint: the incremental count agrees with the offline 2D
    // count of the final edge state, and the cold start stayed the
    // only full recount across >targeted batches.
    let stats = client.request(&Request::Stats).expect("final stats");
    assert_eq!(u64_field(&stats, "batches"), rounds as u64);
    assert_eq!(u64_field(&stats, "full_recounts"), 1);
    let served = u64_field(&client.request(&Request::Count).expect("final count"), "triangles");
    assert_eq!(served, offline_count(label, n, &reference), "offline cross-check ({label})");

    client.request(&Request::Shutdown).expect("shutdown");
    for (rank, child) in children.into_iter().enumerate() {
        let status = child.wait_with_output().expect("wait for rank").status;
        assert_eq!(status.code(), Some(0), "rank {rank} failed:\n{}", rank_log(label, rank));
    }
    // Every process prints the replicated final count.
    for rank in 0..4 {
        let log = rank_log(label, rank);
        assert!(
            log.contains(&format!("triangles     : {served}")),
            "rank {rank} disagrees on the final count:\n{log}"
        );
    }
    assert!(rank_log(label, 0).contains("full recounts : 1"));

    // Rank 0 emitted exactly one tc-run-v2 record for the whole service
    // lifetime: the serve.* counters carry the sustained workload and
    // the triangle anchor matches the final served count.
    let text = std::fs::read_to_string(&report_path).expect("run-record report written");
    assert!(text.contains("\"schema\":\"tc-run-v2\""), "serve report uses v2 schema:\n{text}");
    let recs = tc_metrics::RunRecord::parse_jsonl(&text).expect("parse tc-run-v2 report");
    assert_eq!(recs.len(), 1, "one record per service lifetime");
    let rec = &recs[0];
    assert_eq!(rec.config, "serve");
    assert_eq!(rec.ranks, 4);
    assert_eq!(rec.triangles, served);
    assert_eq!(rec.counters.get("serve.batches_applied"), Some(&(rounds as u64)));
    assert_eq!(rec.counters.get("serve.full_recounts"), Some(&1));
    assert!(rec.counters.get("serve.queries_count").is_some_and(|&v| v > rounds as u64));
}

#[test]
fn four_process_fleet_sustains_mixed_workload() {
    drive("clean", &[], 110);
}

#[test]
fn four_process_fleet_stays_exact_under_chaos() {
    drive("chaos", &["--chaos", "42"], 30);
}
