//! Per-rank instrumentation.
//!
//! Communication time, byte volume, and message counts are the raw
//! material for the paper's Figure 3 (communication fraction) and the
//! cost analysis of §5.4, so every send/recv on a [`crate::Comm`]
//! feeds the counters here. User code can additionally record named
//! phase timers (preprocessing, per-shift compute, …) through
//! [`Timings`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Communication counters for one rank.
///
/// All fields are cumulative over the rank's lifetime.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CommStats {
    /// Payload bytes passed to `send*`.
    pub bytes_sent: u64,
    /// Messages passed to `send*`.
    pub msgs_sent: u64,
    /// Payload bytes returned by `recv*`.
    pub bytes_recv: u64,
    /// Messages returned by `recv*`.
    pub msgs_recv: u64,
    /// Nanoseconds spent inside `send*` (serialization + enqueue).
    pub send_ns: u64,
    /// Nanoseconds spent blocked inside `recv*`.
    pub recv_ns: u64,
}

impl CommStats {
    /// Total time attributed to communication.
    pub fn comm_time(&self) -> Duration {
        Duration::from_nanos(self.send_ns + self.recv_ns)
    }

    /// Element-wise sum, used when aggregating over ranks.
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_sent += other.bytes_sent;
        self.msgs_sent += other.msgs_sent;
        self.bytes_recv += other.bytes_recv;
        self.msgs_recv += other.msgs_recv;
        self.send_ns += other.send_ns;
        self.recv_ns += other.recv_ns;
    }
}

/// Counter block for one rank, written by that rank's thread but
/// readable from any thread (relaxed atomics), so a rank assembling a
/// timeout report can snapshot every peer's counters.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub bytes_sent: AtomicU64,
    pub msgs_sent: AtomicU64,
    pub bytes_recv: AtomicU64,
    pub msgs_recv: AtomicU64,
    pub send_ns: AtomicU64,
    pub recv_ns: AtomicU64,
}

impl SharedStats {
    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            send_ns: self.send_ns.load(Ordering::Relaxed),
            recv_ns: self.recv_ns.load(Ordering::Relaxed),
        }
    }
}

/// Reliable-delivery counters for one rank, all zero unless a
/// [`crate::FaultPlan`] is installed (the transport does not exist
/// otherwise — see the chaos-off bypass tests).
///
/// Sender-side events (`frames_sent`, `retransmits`, `injected_*`)
/// accrue to the sending rank; receiver-side events (`corrupt_frames`,
/// `dup_frames`, `reordered_frames`, `nacks`) to the receiving rank.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Application payloads framed and first-transmitted.
    pub frames_sent: u64,
    /// Frames re-put on the wire by receiver-driven recovery.
    pub retransmits: u64,
    /// Frames the fault plan dropped.
    pub injected_drops: u64,
    /// Frames the fault plan duplicated.
    pub injected_dups: u64,
    /// Frames the fault plan held back (reordered).
    pub injected_reorders: u64,
    /// Frames the fault plan delayed.
    pub injected_delays: u64,
    /// Frames the fault plan truncated or bit-flipped.
    pub injected_corruptions: u64,
    /// Damaged frames detected (length/CRC32c mismatch) and discarded.
    pub corrupt_frames: u64,
    /// Duplicate frames discarded by sequence-number dedup.
    pub dup_frames: u64,
    /// Out-of-order frames parked in the reorder buffer.
    pub reordered_frames: u64,
    /// Deepest reorder buffer observed (frames parked at once).
    pub reorder_depth_max: u64,
    /// Parked frames shed by the reorder buffer's capacity bound; each
    /// eviction schedules an immediate NACK so the recovered gap also
    /// re-covers the evicted sequence numbers.
    pub reorder_evicted: u64,
    /// Recovery rounds driven (NACK + retransmit requests).
    pub nacks: u64,
}

impl ReliabilityStats {
    /// Aggregates over ranks: sums counters, maxes the depth gauge.
    pub fn merge(&mut self, other: &ReliabilityStats) {
        self.frames_sent += other.frames_sent;
        self.retransmits += other.retransmits;
        self.injected_drops += other.injected_drops;
        self.injected_dups += other.injected_dups;
        self.injected_reorders += other.injected_reorders;
        self.injected_delays += other.injected_delays;
        self.injected_corruptions += other.injected_corruptions;
        self.corrupt_frames += other.corrupt_frames;
        self.dup_frames += other.dup_frames;
        self.reordered_frames += other.reordered_frames;
        self.reorder_depth_max = self.reorder_depth_max.max(other.reorder_depth_max);
        self.reorder_evicted += other.reorder_evicted;
        self.nacks += other.nacks;
    }

    /// Whether any reliability machinery fired at all.
    pub fn is_zero(&self) -> bool {
        *self == ReliabilityStats::default()
    }
}

/// Atomic twin of [`ReliabilityStats`], one per rank in the transport.
#[derive(Debug, Default)]
pub(crate) struct SharedReliabilityStats {
    pub frames_sent: AtomicU64,
    pub retransmits: AtomicU64,
    pub injected_drops: AtomicU64,
    pub injected_dups: AtomicU64,
    pub injected_reorders: AtomicU64,
    pub injected_delays: AtomicU64,
    pub injected_corruptions: AtomicU64,
    pub corrupt_frames: AtomicU64,
    pub dup_frames: AtomicU64,
    pub reordered_frames: AtomicU64,
    pub reorder_depth_max: AtomicU64,
    pub reorder_evicted: AtomicU64,
    pub nacks: AtomicU64,
}

impl SharedReliabilityStats {
    pub(crate) fn snapshot(&self) -> ReliabilityStats {
        ReliabilityStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            injected_drops: self.injected_drops.load(Ordering::Relaxed),
            injected_dups: self.injected_dups.load(Ordering::Relaxed),
            injected_reorders: self.injected_reorders.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            injected_corruptions: self.injected_corruptions.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            dup_frames: self.dup_frames.load(Ordering::Relaxed),
            reordered_frames: self.reordered_frames.load(Ordering::Relaxed),
            reorder_depth_max: self.reorder_depth_max.load(Ordering::Relaxed),
            reorder_evicted: self.reorder_evicted.load(Ordering::Relaxed),
            nacks: self.nacks.load(Ordering::Relaxed),
        }
    }
}

/// A stopwatch that adds its elapsed time to a named phase on drop.
pub struct PhaseGuard<'a> {
    timings: &'a Timings,
    name: &'static str,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.timings.add(self.name, self.start.elapsed());
    }
}

/// Named wall-clock phase accumulators for one rank.
///
/// Single-threaded by construction (each rank owns its own), hence the
/// plain `Cell`-free interior mutability via `RefCell`.
#[derive(Debug, Default)]
pub struct Timings {
    phases: std::cell::RefCell<BTreeMap<&'static str, u64>>,
}

impl Timings {
    /// Creates an empty set of accumulators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to phase `name`.
    pub fn add(&self, name: &'static str, d: Duration) {
        *self.phases.borrow_mut().entry(name).or_insert(0) += d.as_nanos() as u64;
    }

    /// Starts a guard that records into `name` when dropped.
    pub fn phase(&self, name: &'static str) -> PhaseGuard<'_> {
        PhaseGuard { timings: self, name, start: Instant::now() }
    }

    /// Times `f` and attributes the elapsed time to `name`.
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _g = self.phase(name);
        f()
    }

    /// Accumulated time of one phase.
    pub fn get(&self, name: &str) -> Duration {
        Duration::from_nanos(self.phases.borrow().get(name).copied().unwrap_or(0))
    }

    /// Snapshot of all phases, in name order.
    pub fn snapshot(&self) -> Vec<(&'static str, Duration)> {
        self.phases.borrow().iter().map(|(k, v)| (*k, Duration::from_nanos(*v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_stats_merge() {
        let mut a = CommStats { bytes_sent: 10, msgs_sent: 1, ..Default::default() };
        let b = CommStats { bytes_sent: 5, msgs_recv: 2, recv_ns: 100, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.bytes_sent, 15);
        assert_eq!(a.msgs_sent, 1);
        assert_eq!(a.msgs_recv, 2);
        assert_eq!(a.comm_time(), Duration::from_nanos(100));
    }

    #[test]
    fn timings_accumulate() {
        let t = Timings::new();
        t.add("ppt", Duration::from_millis(2));
        t.add("ppt", Duration::from_millis(3));
        t.add("tct", Duration::from_millis(1));
        assert_eq!(t.get("ppt"), Duration::from_millis(5));
        assert_eq!(t.get("tct"), Duration::from_millis(1));
        assert_eq!(t.get("missing"), Duration::ZERO);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "ppt");
    }

    #[test]
    fn phase_guard_records_nonzero() {
        let t = Timings::new();
        {
            let _g = t.phase("work");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        assert!(t.get("work") > Duration::ZERO);
    }

    #[test]
    fn time_returns_value() {
        let t = Timings::new();
        let v = t.time("f", || 42);
        assert_eq!(v, 42);
        assert!(t.get("f") > Duration::ZERO);
    }

    #[test]
    fn merge_is_commutative_and_identity_on_default() {
        let a = CommStats {
            bytes_sent: 10,
            msgs_sent: 1,
            bytes_recv: 7,
            msgs_recv: 3,
            send_ns: 40,
            recv_ns: 60,
        };
        let b = CommStats {
            bytes_sent: 2,
            msgs_sent: 5,
            bytes_recv: 1,
            msgs_recv: 0,
            send_ns: 10,
            recv_ns: 0,
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge order must not matter");
        let mut with_zero = a.clone();
        with_zero.merge(&CommStats::default());
        assert_eq!(with_zero, a, "default is the merge identity");
        assert_eq!(ab.comm_time(), Duration::from_nanos(110));
    }

    #[test]
    fn merge_fold_over_many_ranks_matches_fieldwise_sums() {
        let per_rank: Vec<CommStats> = (0..8u64)
            .map(|r| CommStats {
                bytes_sent: r * 100,
                msgs_sent: r,
                bytes_recv: r * 50,
                msgs_recv: r * 2,
                send_ns: r * 7,
                recv_ns: r * 11,
            })
            .collect();
        let mut total = CommStats::default();
        for s in &per_rank {
            total.merge(s);
        }
        let sum: u64 = (0..8).sum();
        assert_eq!(total.bytes_sent, sum * 100);
        assert_eq!(total.msgs_recv, sum * 2);
        assert_eq!(total.comm_time(), Duration::from_nanos(sum * 18));
    }

    #[test]
    fn shared_stats_snapshot_reflects_stores() {
        let s = SharedStats::default();
        s.bytes_sent.store(33, Ordering::Relaxed);
        s.recv_ns.store(44, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_sent, 33);
        assert_eq!(snap.recv_ns, 44);
        assert_eq!(snap.msgs_sent, 0);
    }

    #[test]
    fn nested_phase_guards_attribute_to_both_phases() {
        let t = Timings::new();
        {
            let _outer = t.phase("outer");
            {
                let _inner = t.phase("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert!(t.get("inner") > Duration::ZERO);
        assert!(t.get("outer") >= t.get("inner"), "outer encloses inner");
    }
}
