//! Deterministic fault injection ("chaos") for the fabric.
//!
//! A [`FaultPlan`] installed at universe construction makes selected
//! links misbehave: frames can be delayed, dropped, duplicated,
//! reordered, truncated, or bit-flipped. Every decision is a pure
//! function of `(seed, src, dst, seq, attempt)`, so a failing run
//! replays *exactly* under the same seed — chaos tests are ordinary
//! deterministic tests.
//!
//! Faults apply to transport *frames* (below the reliable-delivery
//! layer in [`crate::reliable`]), never to application payloads
//! directly: the delivery protocol must mask every injected fault or
//! surface a typed [`crate::MpsError::DeliveryFailed`].
//!
//! Plans come from code ([`FaultPlan::uniform`], [`FaultPlan::with_link`])
//! or from the strictly parsed `MPS_CHAOS_*` environment family
//! ([`FaultPlan::from_env`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::universe::strict_env;

/// Environment variable seeding [`FaultPlan::from_env`].
pub const CHAOS_SEED_ENV: &str = "MPS_CHAOS_SEED";
/// Frame drop probability (`0.0..=1.0`) for [`FaultPlan::from_env`].
pub const CHAOS_DROP_ENV: &str = "MPS_CHAOS_DROP";
/// Frame duplication probability for [`FaultPlan::from_env`].
pub const CHAOS_DUPLICATE_ENV: &str = "MPS_CHAOS_DUPLICATE";
/// Frame reorder (holdback) probability for [`FaultPlan::from_env`].
pub const CHAOS_REORDER_ENV: &str = "MPS_CHAOS_REORDER";
/// Frame delay probability for [`FaultPlan::from_env`].
pub const CHAOS_DELAY_ENV: &str = "MPS_CHAOS_DELAY";
/// Frame truncation probability for [`FaultPlan::from_env`].
pub const CHAOS_TRUNCATE_ENV: &str = "MPS_CHAOS_TRUNCATE";
/// Single-bit corruption probability for [`FaultPlan::from_env`].
pub const CHAOS_BITFLIP_ENV: &str = "MPS_CHAOS_BITFLIP";
/// Upper bound of an injected delay, in microseconds.
pub const CHAOS_DELAY_MAX_US_ENV: &str = "MPS_CHAOS_DELAY_MAX_US";
/// Retransmit budget per missing frame before
/// [`crate::MpsError::DeliveryFailed`].
pub const CHAOS_MAX_RETRIES_ENV: &str = "MPS_CHAOS_MAX_RETRIES";
/// Restricts env-configured faults to a link list (`"0->1,2->3"`).
pub const CHAOS_LINKS_ENV: &str = "MPS_CHAOS_LINKS";
/// Rank to crash for [`FaultPlan::from_env`] (paired with
/// [`CHAOS_CRASH_AT_ENV`]): that rank's process aborts at its nth
/// transport send, simulating a SIGKILL at a deterministic point.
pub const CHAOS_CRASH_RANK_ENV: &str = "MPS_CHAOS_CRASH_RANK";
/// 1-based send ordinal at which [`CHAOS_CRASH_RANK_ENV`]'s process
/// aborts (paired; setting only one of the two is an error).
pub const CHAOS_CRASH_AT_ENV: &str = "MPS_CHAOS_CRASH_AT";

/// Every variable of the `MPS_CHAOS_*` family (setting any of them
/// activates [`FaultPlan::from_env`]).
pub const CHAOS_ENV_VARS: &[&str] = &[
    CHAOS_SEED_ENV,
    CHAOS_DROP_ENV,
    CHAOS_DUPLICATE_ENV,
    CHAOS_REORDER_ENV,
    CHAOS_DELAY_ENV,
    CHAOS_TRUNCATE_ENV,
    CHAOS_BITFLIP_ENV,
    CHAOS_DELAY_MAX_US_ENV,
    CHAOS_MAX_RETRIES_ENV,
    CHAOS_LINKS_ENV,
    CHAOS_CRASH_RANK_ENV,
    CHAOS_CRASH_AT_ENV,
];

/// One fault mode a link can exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is delivered late (the sender stalls briefly).
    Delay,
    /// The frame is never delivered.
    Drop,
    /// The frame is delivered twice.
    Duplicate,
    /// The frame is held back and delivered after a later frame.
    Reorder,
    /// The frame is cut short on the wire (detected by length/CRC).
    Truncate,
    /// One bit of the frame is flipped on the wire (detected by CRC).
    BitFlip,
}

impl FaultKind {
    /// All fault modes, in a fixed order (soak suites iterate this).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Delay,
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Truncate,
        FaultKind::BitFlip,
    ];

    /// Stable lowercase name (used in test labels and trace args).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Delay => "delay",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Truncate => "truncate",
            FaultKind::BitFlip => "bitflip",
        }
    }
}

/// Per-link fault probabilities (each independently in `0.0..=1.0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a frame is delayed before delivery.
    pub delay: f64,
    /// Probability a frame is dropped.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is held back behind the next frame.
    pub reorder: f64,
    /// Probability a frame is truncated on the wire.
    pub truncate: f64,
    /// Probability one bit of a frame is flipped on the wire.
    pub bitflip: f64,
    /// Upper bound of an injected delay.
    pub delay_max: Duration,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::none()
    }
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub fn none() -> Self {
        Self {
            delay: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            truncate: 0.0,
            bitflip: 0.0,
            delay_max: Duration::from_micros(200),
        }
    }

    /// Every fault mode at probability `p`.
    pub fn uniform(p: f64) -> Self {
        Self {
            delay: p,
            drop: p,
            duplicate: p,
            reorder: p,
            truncate: p,
            bitflip: p,
            ..Self::none()
        }
    }

    /// Only `kind` at probability `p`, all other modes off.
    pub fn only(kind: FaultKind, p: f64) -> Self {
        let mut f = Self::none();
        match kind {
            FaultKind::Delay => f.delay = p,
            FaultKind::Drop => f.drop = p,
            FaultKind::Duplicate => f.duplicate = p,
            FaultKind::Reorder => f.reorder = p,
            FaultKind::Truncate => f.truncate = p,
            FaultKind::BitFlip => f.bitflip = p,
        }
        f
    }

    /// Whether every probability is zero (the link behaves perfectly).
    pub fn is_none(&self) -> bool {
        self.delay == 0.0
            && self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.truncate == 0.0
            && self.bitflip == 0.0
    }

    fn validate(&self, what: &str) {
        for (name, p) in [
            ("delay", self.delay),
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("truncate", self.truncate),
            ("bitflip", self.bitflip),
        ] {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "{what}: {name} probability {p} outside 0.0..=1.0"
            );
        }
    }
}

/// A seeded, deterministic description of how the fabric misbehaves.
///
/// The plan is installed through
/// [`crate::UniverseConfig`]`::chaos` (or [`crate::Observe`]) and
/// activates the reliable-delivery transport for the whole universe.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    default: LinkFaults,
    links: Vec<(usize, usize, LinkFaults)>,
    restrict: Option<Vec<(usize, usize)>>,
    max_retries: u32,
    nack_base: Duration,
    nack_cap: Duration,
    crash: Option<(usize, u64)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults anywhere (still runs
    /// the full reliable-delivery protocol — useful for overhead and
    /// protocol tests).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            default: LinkFaults::none(),
            links: Vec::new(),
            restrict: None,
            max_retries: 16,
            nack_base: Duration::from_millis(1),
            nack_cap: Duration::from_millis(100),
            crash: None,
        }
    }

    /// Every link exhibits every fault mode at probability `p`.
    pub fn uniform(seed: u64, p: f64) -> Self {
        Self::new(seed).with_default(LinkFaults::uniform(p))
    }

    /// Sets the fault probabilities every link inherits.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        faults.validate("FaultPlan default");
        self.default = faults;
        self
    }

    /// Overrides the faults of one directed link `src → dst`.
    pub fn with_link(mut self, src: usize, dst: usize, faults: LinkFaults) -> Self {
        faults.validate("FaultPlan link");
        self.links.retain(|(s, d, _)| (*s, *d) != (src, dst));
        self.links.push((src, dst, faults));
        self
    }

    /// Restricts the *default* faults to the listed directed links;
    /// links outside the list (and without an explicit
    /// [`FaultPlan::with_link`] entry) behave perfectly.
    pub fn with_restrict(mut self, links: Vec<(usize, usize)>) -> Self {
        self.restrict = Some(links);
        self
    }

    /// Sets how many times a missing frame is re-requested before the
    /// receive fails with [`crate::MpsError::DeliveryFailed`].
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the base (first) NACK backoff delay; later attempts double
    /// it up to `cap`.
    pub fn with_nack_backoff(mut self, base: Duration, cap: Duration) -> Self {
        assert!(base > Duration::ZERO, "NACK base backoff must be positive");
        self.nack_base = base;
        self.nack_cap = cap.max(base);
        self
    }

    /// Crashes rank `rank`'s *process* (`std::process::abort`) at its
    /// `nth` transport send (1-based) — the process-level fault behind
    /// crash-recovery tests: the same seeded-determinism discipline as
    /// link faults, but the fault is a SIGABRT instead of a lost frame.
    /// Only meaningful on the multi-process socket backend; aborting a
    /// thread-backed rank would take the whole test process down.
    pub fn crash_at(mut self, rank: usize, nth: u64) -> Self {
        assert!(nth > 0, "crash_at: the send ordinal is 1-based, 0 never fires");
        self.crash = Some((rank, nth));
        self
    }

    /// The `(rank, nth_send)` process-crash point, if one is planned.
    pub fn crash_point(&self) -> Option<(usize, u64)> {
        self.crash
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The retransmit budget per missing frame.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    pub(crate) fn nack_base(&self) -> Duration {
        self.nack_base
    }

    /// The faults of the directed link `src → dst`.
    pub fn faults_for(&self, src: usize, dst: usize) -> LinkFaults {
        if let Some((_, _, f)) = self.links.iter().find(|(s, d, _)| (*s, *d) == (src, dst)) {
            return *f;
        }
        if let Some(allow) = &self.restrict {
            if !allow.contains(&(src, dst)) {
                return LinkFaults::none();
            }
        }
        self.default
    }

    /// Deterministic fault decision for transmission `attempt` of
    /// frame `seq` on `src → dst`. Retransmissions (`attempt > 0`)
    /// can still be delayed, dropped, or corrupted — a lossy link stays
    /// lossy — but are never duplicated or held back, so a link with
    /// loss probability < 1 always converges.
    pub(crate) fn decide(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> Decision {
        let f = self.faults_for(src, dst);
        let roll = |salt: u64| self.rand(src, dst, seq, attempt, salt);
        let hit = |p: f64, salt: u64| p > 0.0 && uniform01(roll(salt)) < p;
        let delay = hit(f.delay, 1).then(|| {
            let span = f.delay_max.as_micros().max(1) as u64;
            Duration::from_micros(roll(2) % span + 1)
        });
        let corrupt = if hit(f.truncate, 3) {
            Some(Corruption::Truncate(roll(4)))
        } else if hit(f.bitflip, 5) {
            Some(Corruption::BitFlip(roll(6)))
        } else {
            None
        };
        Decision {
            delay,
            drop: hit(f.drop, 7),
            duplicate: attempt == 0 && hit(f.duplicate, 8),
            reorder: attempt == 0 && hit(f.reorder, 9),
            corrupt,
        }
    }

    /// How long the receiver waits before (re-)requesting a missing
    /// frame: exponential in the attempt number, capped, with a small
    /// deterministic jitter so lock-stepped ranks do not NACK in phase.
    pub(crate) fn backoff(&self, src: usize, dst: usize, attempt: u32) -> Duration {
        let base_ns = self.nack_base.as_nanos() as u64;
        let cap_ns = self.nack_cap.as_nanos() as u64;
        let exp = base_ns.saturating_mul(1u64 << attempt.min(20)).min(cap_ns).max(1);
        let jitter = self.rand(src, dst, 0, attempt, 10) % (exp / 4 + 1);
        Duration::from_nanos(exp + jitter)
    }

    fn rand(&self, src: usize, dst: usize, seq: u64, attempt: u32, salt: u64) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in [src as u64, dst as u64, seq, attempt as u64, salt] {
            h = splitmix64(h ^ v.wrapping_mul(0xff51_afd7_ed55_8ccd));
        }
        h
    }

    /// Builds a plan from the `MPS_CHAOS_*` environment family, or
    /// `None` when no variable of the family is set.
    ///
    /// # Panics
    ///
    /// Panics (naming the offending variable) when any set variable
    /// does not parse strictly: probabilities must be finite floats in
    /// `0.0..=1.0`, counts unsigned integers, and
    /// [`CHAOS_LINKS_ENV`] a comma-separated `src->dst` list.
    pub fn from_env() -> Option<Self> {
        if !CHAOS_ENV_VARS.iter().any(|v| std::env::var_os(v).is_some()) {
            return None;
        }
        let seed = strict_env::<u64>(CHAOS_SEED_ENV, "unsigned integer seed").unwrap_or(0xC4A05);
        let mut plan = Self::new(seed);
        let prob = |name: &str| -> Option<f64> {
            let p = strict_env::<f64>(name, "probability")?;
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "{name}={p} is not a probability in 0.0..=1.0"
            );
            Some(p)
        };
        let mut f = LinkFaults::none();
        if let Some(p) = prob(CHAOS_DROP_ENV) {
            f.drop = p;
        }
        if let Some(p) = prob(CHAOS_DUPLICATE_ENV) {
            f.duplicate = p;
        }
        if let Some(p) = prob(CHAOS_REORDER_ENV) {
            f.reorder = p;
        }
        if let Some(p) = prob(CHAOS_DELAY_ENV) {
            f.delay = p;
        }
        if let Some(p) = prob(CHAOS_TRUNCATE_ENV) {
            f.truncate = p;
        }
        if let Some(p) = prob(CHAOS_BITFLIP_ENV) {
            f.bitflip = p;
        }
        if let Some(us) = strict_env::<u64>(CHAOS_DELAY_MAX_US_ENV, "microsecond count") {
            assert!(us > 0, "{CHAOS_DELAY_MAX_US_ENV}=0: the delay bound must be positive");
            f.delay_max = Duration::from_micros(us);
        }
        plan = plan.with_default(f);
        if let Some(r) = strict_env::<u32>(CHAOS_MAX_RETRIES_ENV, "retry count") {
            plan = plan.with_max_retries(r);
        }
        if let Some(spec) = strict_env::<String>(CHAOS_LINKS_ENV, "link list") {
            plan = plan.with_restrict(parse_links(&spec));
        }
        let crash_rank = strict_env::<usize>(CHAOS_CRASH_RANK_ENV, "rank index");
        let crash_at = strict_env::<u64>(CHAOS_CRASH_AT_ENV, "1-based send ordinal");
        match (crash_rank, crash_at) {
            (Some(rank), Some(nth)) => {
                assert!(nth > 0, "{CHAOS_CRASH_AT_ENV}=0: the send ordinal is 1-based");
                plan = plan.crash_at(rank, nth);
            }
            (None, None) => {}
            (Some(_), None) => {
                panic!("{CHAOS_CRASH_RANK_ENV} is set but {CHAOS_CRASH_AT_ENV} is not")
            }
            (None, Some(_)) => {
                panic!("{CHAOS_CRASH_AT_ENV} is set but {CHAOS_CRASH_RANK_ENV} is not")
            }
        }
        Some(plan)
    }
}

/// Parses a `"0->1,2->3"` directed-link list.
///
/// # Panics
///
/// Panics naming [`CHAOS_LINKS_ENV`] on any malformed entry.
fn parse_links(spec: &str) -> Vec<(usize, usize)> {
    spec.split(',')
        .map(|entry| {
            let entry = entry.trim();
            let bad = || -> ! {
                panic!(
                    "{CHAOS_LINKS_ENV}: bad link {entry:?} (expected \"src->dst\", e.g. \"0->1\")"
                )
            };
            let (s, d) = entry.split_once("->").unwrap_or_else(|| bad());
            let s = s.trim().parse::<usize>().unwrap_or_else(|_| bad());
            let d = d.trim().parse::<usize>().unwrap_or_else(|_| bad());
            (s, d)
        })
        .collect()
}

/// What [`FaultPlan::decide`] chose for one frame transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Decision {
    /// Stall the sender this long before delivering.
    pub delay: Option<Duration>,
    /// Do not deliver the frame at all.
    pub drop: bool,
    /// Deliver the frame twice.
    pub duplicate: bool,
    /// Hold the frame back and deliver it after the link's next frame.
    pub reorder: bool,
    /// Corrupt the delivered copy (the retransmit window keeps the
    /// pristine frame).
    pub corrupt: Option<Corruption>,
}

/// A wire-level corruption, parameterized by raw entropy resolved
/// against the concrete frame length at application time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Corruption {
    /// Keep only `entropy % len` leading bytes.
    Truncate(u64),
    /// Flip bit `entropy % (len * 8)`.
    BitFlip(u64),
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to `[0, 1)`.
fn uniform01(r: u64) -> f64 {
    (r >> 11) as f64 / (1u64 << 53) as f64
}

/// Number of universes with a live transport. The chaos-off hot path
/// checks this single atomic before even looking at the fabric, so a
/// clean universe pays one relaxed load per send/recv and allocates
/// nothing.
static ACTIVE_TRANSPORTS: AtomicUsize = AtomicUsize::new(0);

/// Whether *any* universe in the process currently runs a transport.
#[inline]
pub(crate) fn chaos_possible() -> bool {
    ACTIVE_TRANSPORTS.load(Ordering::Relaxed) != 0
}

/// RAII registration of one live transport.
#[derive(Debug)]
pub(crate) struct ActiveGuard;

impl ActiveGuard {
    pub(crate) fn new() -> Self {
        ACTIVE_TRANSPORTS.fetch_add(1, Ordering::Relaxed);
        Self
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE_TRANSPORTS.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::uniform(42, 0.3);
        for seq in 0..200 {
            for attempt in 0..3 {
                let a = plan.decide(1, 2, seq, attempt);
                let b = plan.decide(1, 2, seq, attempt);
                assert_eq!(a, b, "seq {seq} attempt {attempt}");
            }
        }
    }

    #[test]
    fn decisions_vary_with_every_coordinate() {
        // Probability ½ per mode: 200 decisions differing in one
        // coordinate collide with probability ≈ 2⁻²⁰⁰ per pair.
        let plan = FaultPlan::uniform(7, 0.5);
        let fingerprint = |src, dst, seed_off: u64| -> Vec<Decision> {
            let p = FaultPlan::uniform(7 + seed_off, 0.5);
            (0..200).map(|seq| p.decide(src, dst, seq, 0)).collect()
        };
        let base = fingerprint(0, 1, 0);
        assert_ne!(base, fingerprint(1, 0, 0), "direction must matter");
        assert_ne!(base, fingerprint(0, 2, 0), "destination must matter");
        assert_ne!(base, fingerprint(0, 1, 1), "seed must matter");
        let per_attempt: Vec<bool> = (0..200).map(|s| plan.decide(0, 1, s, 1).drop).collect();
        let first: Vec<bool> = (0..200).map(|s| plan.decide(0, 1, s, 0).drop).collect();
        assert_ne!(per_attempt, first, "attempt must matter");
    }

    #[test]
    fn probabilities_are_respected_roughly() {
        let plan = FaultPlan::new(3).with_default(LinkFaults::only(FaultKind::Drop, 0.2));
        let drops = (0..10_000).filter(|&s| plan.decide(0, 1, s, 0).drop).count();
        assert!((1500..2500).contains(&drops), "≈20% expected, got {drops}/10000");
        // And a zero-probability mode never fires.
        assert!((0..10_000).all(|s| !plan.decide(0, 1, s, 0).duplicate));
    }

    #[test]
    fn retransmissions_are_never_duplicated_or_reordered() {
        let plan = FaultPlan::uniform(11, 1.0);
        let d = plan.decide(2, 3, 5, 1);
        assert!(!d.duplicate && !d.reorder);
        assert!(d.drop, "drop still applies to retransmits");
    }

    #[test]
    fn link_overrides_and_restriction() {
        let plan = FaultPlan::uniform(1, 0.5)
            .with_link(0, 1, LinkFaults::none())
            .with_restrict(vec![(0, 1), (2, 3)]);
        assert!(plan.faults_for(0, 1).is_none(), "explicit override wins");
        assert_eq!(plan.faults_for(2, 3).drop, 0.5, "restricted link keeps defaults");
        assert!(plan.faults_for(1, 0).is_none(), "unlisted link is healthy");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let plan =
            FaultPlan::new(0).with_nack_backoff(Duration::from_millis(1), Duration::from_millis(8));
        let b1 = plan.backoff(0, 1, 0);
        let b4 = plan.backoff(0, 1, 3);
        let b20 = plan.backoff(0, 1, 20);
        assert!(b1 >= Duration::from_millis(1));
        assert!(b4 > b1, "backoff must grow: {b1:?} vs {b4:?}");
        assert!(b20 <= Duration::from_millis(10), "cap (plus jitter) holds: {b20:?}");
    }

    #[test]
    #[should_panic(expected = "outside 0.0..=1.0")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::new(0).with_default(LinkFaults::uniform(1.5));
    }

    #[test]
    fn crash_plan_is_carried() {
        let plan = FaultPlan::new(9).crash_at(3, 17);
        assert_eq!(plan.crash_point(), Some((3, 17)));
        assert_eq!(FaultPlan::new(9).crash_point(), None);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn crash_at_zero_rejected() {
        let _ = FaultPlan::new(0).crash_at(1, 0);
    }

    #[test]
    fn parse_links_accepts_list_with_spaces() {
        assert_eq!(parse_links("0->1, 4 -> 2"), vec![(0, 1), (4, 2)]);
    }

    #[test]
    #[should_panic(expected = "MPS_CHAOS_LINKS")]
    fn parse_links_rejects_garbage() {
        let _ = parse_links("0->1,zap");
    }
}
