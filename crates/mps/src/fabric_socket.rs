//! The multi-process fabric backend over Unix-domain or TCP sockets.
//!
//! Each rank is its own OS process holding one [`SocketFabric`]: a
//! full mesh of stream connections to every peer, one reader thread
//! per inbound connection feeding the local mailbox, and the reliable
//! transport of [`crate::reliable`] as the *mandatory* wire layer —
//! unlike the in-process backend, a socket can really lose, reorder,
//! or truncate data (and a chaos plan can make it do so on purpose),
//! so every application payload travels framed, sequenced, and
//! checksummed.
//!
//! ## Connection setup
//!
//! Every rank binds a listener on its own endpoint (rank order in
//! [`crate::SocketConfig::peers`]), then dials every lower rank and
//! accepts from every higher rank. Both sides exchange a fixed-size
//! hello — magic, protocol version, launch epoch, universe size, rank
//! — and reject mismatches, so a stale process from a previous launch
//! (different epoch) or a mis-wired endpoint list fails loudly at
//! startup instead of corrupting a run.
//!
//! ## Wire format
//!
//! After the handshake the stream carries length-prefixed messages:
//! one kind byte, a little-endian `u64` body length, then the body.
//!
//! | kind | body | meaning |
//! |------|------|---------|
//! | `DATA`    | transport frame          | one frame of [`crate::reliable`] |
//! | `ACK`     | `u64` next_seq           | receiver's cumulative ack        |
//! | `NACK`    | `u64` from_seq + `u32` attempt | re-request everything ≥ from_seq |
//! | `NOTHING` | `u64` from_seq           | NACK reply: window empty at/above from_seq |
//! | `FIN`     | empty                    | orderly rank termination         |
//! | `FAIL`    | `u32` rank + UTF-8 brief | first-failure broadcast          |
//!
//! `DATA` goes through the transport's fault plan (chaos applies to
//! frames, exactly like in-process); control messages bypass it, since
//! they are the recovery machinery itself.
//!
//! ## Shutdown
//!
//! A finishing rank drains (waits until every frame it sent is acked),
//! broadcasts `FIN`, and waits for every peer's `FIN` before closing
//! sockets — so no in-flight frame is stranded by a disappearing
//! process. On failure the drain is skipped and `FAIL` is broadcast
//! instead, which wakes every peer's blocked receive.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::chaos::FaultPlan;
use crate::error::{MpsError, MpsResult};
use crate::fabric::{
    lock_recover, AwaitOutcome, BlockedOp, Fabric, Failure, Mailbox, Matcher, Packet, Recovery,
};
use crate::reliable::{
    FrameSink, Transport, MAX_FRAME_PAYLOAD, TRANSPORT_NOTHING_TAG, TRANSPORT_TAG,
};
use crate::stats::SharedStats;
use crate::universe::SocketConfig;

/// Handshake magic: identifies this wire protocol.
const MAGIC: &[u8; 8] = b"TCMPSFB1";

/// Wire protocol version inside the handshake.
const VERSION: u32 = 1;

/// Handshake size: magic (8) + version (4) + epoch (8) + size (4) + rank (4).
const HELLO_LEN: usize = 28;

/// Wire message header: kind (1) + body length (8).
const MSG_HEADER: usize = 9;

/// Largest body a wire message may claim (one transport frame plus
/// header slack); a corrupt length prefix must not allocate terabytes.
const MAX_WIRE_BODY: u64 = MAX_FRAME_PAYLOAD as u64 + 64;

const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;
const KIND_NACK: u8 = 2;
const KIND_NOTHING: u8 = 3;
const KIND_FIN: u8 = 4;
const KIND_FAIL: u8 = 5;
/// A recoverable-mode peer-loss notice: `u32` rank of the peer whose
/// connection dropped. Unlike `FAIL` it is typed [`MpsError::PeerDown`]
/// at every survivor, so session loops can rejoin instead of dying.
const KIND_DOWN: u8 = 6;

/// How often polling loops (dial retry, accept, drain, await-peers)
/// re-check their condition.
const POLL: Duration = Duration::from_millis(2);

/// One rank's endpoint, parsed from its peer-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Endpoint {
    /// `unix:/path` or any entry containing `/`.
    Unix(PathBuf),
    /// `host:port`.
    Tcp(String),
}

fn parse_endpoint(rank: usize, spec: &str) -> MpsResult<Endpoint> {
    if let Some(path) = spec.strip_prefix("unix:") {
        return Ok(Endpoint::Unix(PathBuf::from(path)));
    }
    if spec.contains('/') {
        return Ok(Endpoint::Unix(PathBuf::from(spec)));
    }
    if spec.contains(':') {
        return Ok(Endpoint::Tcp(spec.to_string()));
    }
    Err(MpsError::Protocol {
        rank,
        msg: format!(
            "endpoint {spec:?} is neither a Unix socket path (contains '/' or 'unix:' \
             prefix) nor a TCP host:port"
        ),
    })
}

/// A connected stream of either family.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d),
            Stream::Tcp(s) => s.set_read_timeout(d),
        }
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener of either family.
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

/// Socket-wire counters (`mps.fabric.*`), atomic so reader threads and
/// the rank thread record concurrently.
#[derive(Default)]
struct WireStats {
    connects: AtomicU64,
    accepts: AtomicU64,
    handshakes: AtomicU64,
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    acks_sent: AtomicU64,
    nacks_sent: AtomicU64,
}

/// Plain-value snapshot of [`WireStats`], fed into the metrics
/// registry by `Universe::try_run_socket`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WireSnapshot {
    pub(crate) connects: u64,
    pub(crate) accepts: u64,
    pub(crate) handshakes: u64,
    pub(crate) msgs_sent: u64,
    pub(crate) bytes_sent: u64,
    pub(crate) msgs_recv: u64,
    pub(crate) bytes_recv: u64,
    pub(crate) acks_sent: u64,
    pub(crate) nacks_sent: u64,
}

/// One rank process's endpoint of a multi-process universe.
pub(crate) struct SocketFabric {
    rank: usize,
    size: usize,
    timeout: Duration,
    /// This rank's inbound mailbox (reader threads push, the rank
    /// thread matches).
    mailbox: Mailbox,
    failure: Mutex<Option<Failure>>,
    /// FIN flags, indexed by rank (this rank's own entry included).
    finished: Vec<AtomicBool>,
    /// What this rank is currently blocked on (peers' states are not
    /// observable across processes).
    blocked: Mutex<Option<BlockedOp>>,
    stats: SharedStats,
    /// The wire layer. Always present: this fabric has no unframed
    /// path.
    transport: Transport,
    /// Write halves, one per peer (`None` at this rank's own index).
    writers: Vec<Option<Mutex<Stream>>>,
    wire: WireStats,
    shutdown: AtomicBool,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Own Unix socket path, removed at shutdown.
    unix_path: Option<PathBuf>,
    /// Recoverable mode: a dead peer's connection loss is recorded as
    /// the restartable [`MpsError::PeerDown`] instead of `PeerFailed`,
    /// so a supervisor can respawn the rank and survivors can rejoin
    /// at the next epoch.
    recoverable: bool,
}

impl SocketFabric {
    /// Binds this rank's endpoint, connects the full mesh, handshakes
    /// every peer, and starts one reader thread per connection.
    pub(crate) fn connect(config: &SocketConfig) -> MpsResult<Arc<Self>> {
        let rank = config.rank;
        let size = config.peers.len();
        let timeout = config.universe.effective_recv_timeout();
        let plan = config.universe.effective_chaos().unwrap_or_else(|| FaultPlan::new(0));
        let _span = tc_trace::span(tc_trace::names::FABRIC_CONNECT, tc_trace::Category::Comm)
            .arg("rank", rank)
            .arg("size", size);

        let endpoint = parse_endpoint(rank, &config.peers[rank])?;
        let (listener, unix_path) = bind(rank, &endpoint)?;

        let deadline = Instant::now() + timeout;
        let mut streams: Vec<Option<Stream>> = (0..size).map(|_| None).collect();
        let (mut connects, mut accepts, mut handshakes) = (0u64, 0u64, 0u64);

        // Dial every lower rank (they bound their listeners before
        // dialing anyone, so retry-until-deadline masks launch skew).
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let ep = parse_endpoint(rank, &config.peers[peer])?;
            let stream = dial(rank, peer, &ep, deadline)?;
            connects += 1;
            let stream = handshake(rank, size, config.epoch, stream, Some(peer), deadline)?.1;
            handshakes += 1;
            *slot = Some(stream);
        }

        // Accept from every higher rank; the hello says who is calling.
        // Each accepted connection must complete its handshake within
        // the strict-parsed `MPS_HANDSHAKE_TIMEOUT_MS` budget: a
        // stalled or half-open dialer is dropped (typed Timeout) and
        // the accept loop keeps going instead of wedging forever.
        let hs_budget = config.effective_handshake_timeout();
        if rank + 1 < size {
            listener.set_nonblocking(true).map_err(|e| io_error(rank, "listener", &e))?;
            let mut missing = size - rank - 1;
            while missing > 0 {
                let raw = match listener.accept() {
                    Ok(s) => s,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= deadline {
                            return Err(MpsError::Protocol {
                                rank,
                                msg: format!(
                                    "timed out waiting for {missing} higher-rank peer(s) to \
                                     connect"
                                ),
                            });
                        }
                        std::thread::sleep(POLL);
                        continue;
                    }
                    Err(e) => return Err(io_error(rank, "accept", &e)),
                };
                accepts += 1;
                let hs_deadline = deadline.min(Instant::now() + hs_budget);
                let (peer, stream) =
                    match handshake(rank, size, config.epoch, raw, None, hs_deadline) {
                        Ok(hello) => hello,
                        Err(MpsError::Timeout { .. }) => {
                            // Half-open/silent dialer: drop it and keep
                            // accepting — the real peers are still due.
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                handshakes += 1;
                if peer <= rank || streams[peer].is_some() {
                    return Err(MpsError::Protocol {
                        rank,
                        msg: format!("unexpected or duplicate connection from rank {peer}"),
                    });
                }
                streams[peer] = Some(stream);
                missing -= 1;
            }
        }

        // Split each stream: the write half goes into the shared
        // writer table (installed before the Arc is ever cloned, so no
        // thread can observe it mid-construction), the read half will
        // feed a dedicated reader thread.
        let mut writers: Vec<Option<Mutex<Stream>>> = (0..size).map(|_| None).collect();
        let mut read_halves: Vec<(usize, Stream)> = Vec::with_capacity(size.saturating_sub(1));
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            stream.set_read_timeout(None).map_err(|e| io_error(rank, "stream setup", &e))?;
            let reader = stream.try_clone().map_err(|e| io_error(rank, "stream clone", &e))?;
            writers[peer] = Some(Mutex::new(stream));
            read_halves.push((peer, reader));
        }

        let wire = WireStats::default();
        wire.connects.store(connects, Ordering::Relaxed);
        wire.accepts.store(accepts, Ordering::Relaxed);
        wire.handshakes.store(handshakes, Ordering::Relaxed);

        let fabric = Arc::new(Self {
            rank,
            size,
            timeout,
            mailbox: Mailbox::default(),
            failure: Mutex::new(None),
            finished: (0..size).map(|_| AtomicBool::new(false)).collect(),
            blocked: Mutex::new(None),
            stats: SharedStats::default(),
            transport: Transport::new(size, plan),
            writers,
            wire,
            shutdown: AtomicBool::new(false),
            readers: Mutex::new(Vec::new()),
            unix_path,
            recoverable: config.recoverable,
        });

        // A reconnect at a bumped epoch is a rejoin: the per-link
        // reliable-transport state (sender windows, dedup maps) was
        // rebuilt from zero for the new epoch.
        if config.recoverable && config.epoch > 0 {
            tc_metrics::counter_add(tc_metrics::names::MPS_FABRIC_REJOINS, 1);
            tc_metrics::counter_add(tc_metrics::names::MPS_REL_EPOCH_RESETS, (size - 1) as u64);
        }

        for (peer, reader) in read_halves {
            let f = Arc::clone(&fabric);
            let handle = std::thread::Builder::new()
                .name(format!("mps-sock-r{rank}-p{peer}"))
                .spawn(move || f.reader_loop(peer, reader))
                .expect("spawn socket reader thread");
            lock_recover(&fabric.readers).push(handle);
        }
        Ok(fabric)
    }

    /// Whether a connection error on `peer`'s stream is expected (the
    /// universe is ending) rather than a failure.
    fn loss_is_benign(&self, peer: usize) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || self.finished[peer].load(Ordering::SeqCst)
            || self.failure().is_some()
    }

    /// The typed error recorded when `peer`'s connection drops on a
    /// live universe: restartable `PeerDown` in recoverable mode, the
    /// fatal `PeerFailed` otherwise.
    fn peer_loss_error(&self, peer: usize, e: &std::io::Error) -> MpsError {
        if self.recoverable {
            MpsError::PeerDown { rank: peer }
        } else {
            MpsError::PeerFailed { rank: peer, msg: format!("connection to rank {peer} lost: {e}") }
        }
    }

    /// Writes one wire message to `dst`. Write errors on a live
    /// universe record a connection-loss failure; during teardown they
    /// are expected and ignored.
    fn write_msg(&self, dst: usize, kind: u8, body: &[u8]) {
        let Some(slot) = &self.writers[dst] else {
            debug_assert!(false, "no wire to rank {dst} (self-traffic bypasses the wire)");
            return;
        };
        let mut hdr = [0u8; MSG_HEADER];
        hdr[0] = kind;
        hdr[1..9].copy_from_slice(&(body.len() as u64).to_le_bytes());
        let result = {
            let mut s = lock_recover(slot);
            s.write_all(&hdr).and_then(|_| s.write_all(body)).and_then(|_| s.flush())
        };
        match result {
            Ok(()) => {
                self.wire.msgs_sent.fetch_add(1, Ordering::Relaxed);
                self.wire.bytes_sent.fetch_add((MSG_HEADER + body.len()) as u64, Ordering::Relaxed);
                match kind {
                    KIND_ACK => {
                        self.wire.acks_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    KIND_NACK => {
                        self.wire.nacks_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            Err(e) => {
                if !self.loss_is_benign(dst) {
                    self.record_failure(self.rank, self.peer_loss_error(dst, &e));
                }
            }
        }
    }

    /// One inbound connection's read loop: decodes wire messages and
    /// routes them (mailbox push, ack/retransmit, FIN/FAIL flags)
    /// until EOF, an error, or shutdown.
    fn reader_loop(self: Arc<Self>, peer: usize, mut stream: Stream) {
        let mut hdr = [0u8; MSG_HEADER];
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Err(e) = stream.read_exact(&mut hdr) {
                self.note_connection_end(peer, &e);
                return;
            }
            let kind = hdr[0];
            let len = u64::from_le_bytes(hdr[1..9].try_into().unwrap());
            if len > MAX_WIRE_BODY {
                self.record_failure(
                    self.rank,
                    MpsError::Protocol {
                        rank: self.rank,
                        msg: format!("wire message from rank {peer} claims {len} bytes"),
                    },
                );
                return;
            }
            let mut body = vec![0u8; len as usize];
            if let Err(e) = stream.read_exact(&mut body) {
                self.note_connection_end(peer, &e);
                return;
            }
            self.wire.msgs_recv.fetch_add(1, Ordering::Relaxed);
            self.wire.bytes_recv.fetch_add(MSG_HEADER as u64 + len, Ordering::Relaxed);
            match kind {
                KIND_DATA => {
                    self.mailbox.push(Packet {
                        src: peer,
                        tag: TRANSPORT_TAG,
                        data: Bytes::from(body),
                    });
                }
                KIND_ACK if body.len() == 8 => {
                    let next = u64::from_le_bytes(body[..8].try_into().unwrap());
                    // The peer acked frames *we* sent on our link to it.
                    self.transport.ack(self.rank, peer, next);
                }
                KIND_NACK if body.len() == 12 => {
                    let from_seq = u64::from_le_bytes(body[..8].try_into().unwrap());
                    let attempt = u32::from_le_bytes(body[8..12].try_into().unwrap());
                    let resent =
                        self.transport.retransmit_from(&*self, self.rank, peer, from_seq, attempt);
                    if resent == 0 {
                        // Nothing at or above from_seq exists (yet):
                        // tell the receiver so it re-arms patience
                        // instead of burning its retry budget.
                        self.write_msg(peer, KIND_NOTHING, &from_seq.to_le_bytes());
                    }
                }
                KIND_NOTHING if body.len() == 8 => {
                    self.mailbox.push(Packet {
                        src: peer,
                        tag: TRANSPORT_NOTHING_TAG,
                        data: Bytes::from(body),
                    });
                }
                KIND_FIN => {
                    self.finished[peer].store(true, Ordering::SeqCst);
                    self.mailbox.arrived.notify_all();
                }
                KIND_FAIL if body.len() >= 4 => {
                    let failed = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
                    let msg = String::from_utf8_lossy(&body[4..]).into_owned();
                    // Relayed failure: store it without re-broadcasting.
                    self.store_failure(Failure {
                        rank: failed,
                        error: MpsError::PeerFailed { rank: failed, msg },
                    });
                }
                KIND_DOWN if body.len() == 4 => {
                    let down = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
                    // Relayed peer loss: every survivor sees the same
                    // typed, restartable PeerDown.
                    self.store_failure(Failure {
                        rank: down,
                        error: MpsError::PeerDown { rank: down },
                    });
                }
                _ => {
                    self.record_failure(
                        self.rank,
                        MpsError::Protocol {
                            rank: self.rank,
                            msg: format!(
                                "malformed wire message from rank {peer}: kind {kind}, \
                                 {len}-byte body"
                            ),
                        },
                    );
                    return;
                }
            }
        }
    }

    /// EOF or read error on `peer`'s connection: benign at teardown,
    /// a peer-loss failure otherwise.
    fn note_connection_end(&self, peer: usize, e: &std::io::Error) {
        if self.loss_is_benign(peer) {
            return;
        }
        self.record_failure(self.rank, self.peer_loss_error(peer, e));
    }

    /// Stores the first failure and wakes the local rank; does not
    /// broadcast (used for failures relayed from other processes).
    fn store_failure(&self, fail: Failure) {
        {
            let mut slot = lock_recover(&self.failure);
            if slot.is_none() {
                *slot = Some(fail);
            }
        }
        self.mailbox.arrived.notify_all();
    }

    /// Blocks until every rank (including this one) has announced FIN,
    /// or a failure is recorded, or the deadline passes.
    pub(crate) fn await_peers(&self) {
        let deadline = Instant::now() + self.timeout;
        loop {
            if self.failure().is_some()
                || (0..self.size).all(|r| self.finished[r].load(Ordering::SeqCst))
            {
                return;
            }
            if Instant::now() >= deadline {
                self.store_failure(Failure {
                    rank: self.rank,
                    error: MpsError::Protocol {
                        rank: self.rank,
                        msg: "timed out waiting for peers to finish".to_string(),
                    },
                });
                return;
            }
            let queue = lock_recover(&self.mailbox.queue);
            drop(
                self.mailbox
                    .arrived
                    .wait_timeout(queue, POLL.max(Duration::from_millis(20)))
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
    }

    /// Snapshot of the wire counters.
    pub(crate) fn wire_stats(&self) -> WireSnapshot {
        let w = &self.wire;
        WireSnapshot {
            connects: w.connects.load(Ordering::Relaxed),
            accepts: w.accepts.load(Ordering::Relaxed),
            handshakes: w.handshakes.load(Ordering::Relaxed),
            msgs_sent: w.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: w.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: w.msgs_recv.load(Ordering::Relaxed),
            bytes_recv: w.bytes_recv.load(Ordering::Relaxed),
            acks_sent: w.acks_sent.load(Ordering::Relaxed),
            nacks_sent: w.nacks_sent.load(Ordering::Relaxed),
        }
    }

    /// Tears the mesh down: closes every stream (which unblocks the
    /// reader threads), joins them, and removes this rank's Unix
    /// socket file.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for slot in self.writers.iter().flatten() {
            lock_recover(slot).shutdown_both();
        }
        let readers = std::mem::take(&mut *lock_recover(&self.readers));
        for h in readers {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl FrameSink for SocketFabric {
    fn deliver_frame(&self, src: usize, dst: usize, frame: Bytes) {
        debug_assert_eq!(src, self.rank, "a process only transmits its own frames");
        if dst == self.rank {
            // Self-sends stay in-process (still framed, so chaos and
            // recovery semantics match the other links).
            self.mailbox.push(Packet { src, tag: TRANSPORT_TAG, data: frame });
        } else {
            self.write_msg(dst, KIND_DATA, frame.as_slice());
        }
    }
}

impl Fabric for SocketFabric {
    fn size(&self) -> usize {
        self.size
    }

    fn timeout(&self) -> Duration {
        self.timeout
    }

    fn backend(&self) -> &'static str {
        "socket"
    }

    fn transport(&self) -> Option<&Transport> {
        Some(&self.transport)
    }

    fn shared_stats(&self, rank: usize) -> &SharedStats {
        assert_eq!(rank, self.rank, "only the local rank's counters exist in this process");
        &self.stats
    }

    fn send(&self, src: usize, dst: usize, tag: u64, data: Bytes) {
        debug_assert_eq!(src, self.rank);
        if let Err(e) = self.transport.send(self, src, dst, tag, data) {
            self.record_failure(src, e);
        }
    }

    fn await_match_until(
        &self,
        rank: usize,
        src: usize,
        deadline: Instant,
        slice: Option<Instant>,
        matcher: Matcher<'_>,
    ) -> AwaitOutcome {
        debug_assert_eq!(rank, self.rank);
        self.mailbox.await_match_until(
            deadline,
            slice,
            || self.failure(),
            || self.finished[src].load(Ordering::SeqCst),
            matcher,
        )
    }

    fn record_failure(&self, rank: usize, error: MpsError) {
        // A peer loss broadcasts as typed DOWN (the rank number alone),
        // everything else as FAIL with the brief; either way peers
        // blocked in receives wake instead of running out their
        // deadline.
        let (kind, body) = match &error {
            MpsError::PeerDown { rank: down } => (KIND_DOWN, (*down as u32).to_le_bytes().to_vec()),
            _ => {
                let brief = Failure { rank, error: error.clone() }.brief();
                let mut body = Vec::with_capacity(4 + brief.len());
                body.extend_from_slice(&(rank as u32).to_le_bytes());
                body.extend_from_slice(brief.as_bytes());
                (KIND_FAIL, body)
            }
        };
        self.store_failure(Failure { rank, error });
        for dst in 0..self.size {
            if dst != self.rank {
                self.write_msg(dst, kind, &body);
            }
        }
    }

    fn failure(&self) -> Option<Failure> {
        lock_recover(&self.failure).clone()
    }

    fn mark_finished(&self, rank: usize) {
        debug_assert_eq!(rank, self.rank);
        // Release chaos holdbacks first (a held frame must not outlive
        // its sender), then drain: a frame is safe to abandon only
        // once its receiver acked it.
        self.transport.flush_rank(self, rank);
        if self.failure().is_none() {
            let deadline = Instant::now() + self.timeout;
            while !self.transport.outbound_drained(rank) {
                if self.failure().is_some() {
                    break;
                }
                if Instant::now() >= deadline {
                    self.store_failure(Failure {
                        rank,
                        error: MpsError::Protocol {
                            rank,
                            msg: "shutdown drain timed out with unacked frames".to_string(),
                        },
                    });
                    break;
                }
                std::thread::sleep(POLL);
            }
        }
        self.finished[rank].store(true, Ordering::SeqCst);
        for dst in 0..self.size {
            if dst != self.rank {
                self.write_msg(dst, KIND_FIN, &[]);
            }
        }
        self.mailbox.arrived.notify_all();
    }

    fn is_finished(&self, rank: usize) -> bool {
        self.finished[rank].load(Ordering::SeqCst)
    }

    fn set_blocked(&self, rank: usize, op: Option<BlockedOp>) {
        debug_assert_eq!(rank, self.rank);
        *lock_recover(&self.blocked) = op;
    }

    fn publish_ack(&self, src: usize, dst: usize, next_seq: u64) {
        debug_assert_eq!(dst, self.rank);
        // Local watermark (prunes the self-link window and feeds
        // outbound_drained) plus the wire ack for a remote sender.
        self.transport.ack(src, dst, next_seq);
        if src != self.rank {
            self.write_msg(src, KIND_ACK, &next_seq.to_le_bytes());
        }
    }

    fn recover(&self, src: usize, dst: usize, from_seq: u64, attempt: u32) -> Recovery {
        debug_assert_eq!(dst, self.rank);
        if src == self.rank {
            // Self-link: the window lives in this process.
            return Recovery::Resent(
                self.transport.retransmit_from(self, src, dst, from_seq, attempt),
            );
        }
        if self.finished[src].load(Ordering::SeqCst) {
            // The peer drained before announcing FIN, so everything it
            // ever sent is already acked here: there is nothing at or
            // above from_seq to recover — same verdict the in-process
            // backend reads synchronously out of the shared window.
            return Recovery::Resent(0);
        }
        let mut body = [0u8; 12];
        body[..8].copy_from_slice(&from_seq.to_le_bytes());
        body[8..12].copy_from_slice(&attempt.to_le_bytes());
        self.write_msg(src, KIND_NACK, &body);
        Recovery::Requested
    }

    fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let state = match lock_recover(&self.blocked).as_ref() {
            Some(b) => format!(
                "blocked in {} from rank {} (tag {:#x}) for {:.1?}",
                b.op,
                b.src,
                b.tag,
                b.since.elapsed()
            ),
            None => "running".to_string(),
        };
        let s = self.stats.snapshot();
        let _ = writeln!(
            out,
            "  rank {} (socket backend, this process): {state}; sent {} msgs / {} B, \
             recvd {} msgs / {} B, {} undrained",
            self.rank,
            s.msgs_sent,
            s.bytes_sent,
            s.msgs_recv,
            s.bytes_recv,
            self.mailbox.backlog()
        );
        for r in 0..self.size {
            if r != self.rank {
                let fin = if self.finished[r].load(Ordering::SeqCst) { "FIN" } else { "live" };
                let _ = writeln!(out, "  rank {r}: remote process, {fin}");
            }
        }
        out
    }
}

/// Binds this rank's listener, replacing a stale Unix socket file from
/// a dead previous run.
fn bind(rank: usize, ep: &Endpoint) -> MpsResult<(Listener, Option<PathBuf>)> {
    match ep {
        Endpoint::Unix(path) => {
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)
                .map_err(|e| io_error(rank, &format!("bind {}", path.display()), &e))?;
            Ok((Listener::Unix(l), Some(path.clone())))
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())
                .map_err(|e| io_error(rank, &format!("bind {addr}"), &e))?;
            Ok((Listener::Tcp(l), None))
        }
    }
}

/// Dials `peer`'s endpoint, retrying until `deadline` (peers launch
/// with arbitrary skew).
fn dial(rank: usize, peer: usize, ep: &Endpoint, deadline: Instant) -> MpsResult<Stream> {
    loop {
        let attempt = match ep {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        };
        match attempt {
            Ok(s) => {
                if let Stream::Tcp(t) = &s {
                    let _ = t.set_nodelay(true);
                }
                return Ok(s);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(MpsError::Protocol {
                        rank,
                        msg: format!("could not connect to rank {peer}: {e}"),
                    });
                }
                std::thread::sleep(POLL);
            }
        }
    }
}

fn encode_hello(epoch: u64, size: usize, rank: usize) -> [u8; HELLO_LEN] {
    let mut h = [0u8; HELLO_LEN];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&epoch.to_le_bytes());
    h[20..24].copy_from_slice(&(size as u32).to_le_bytes());
    h[24..28].copy_from_slice(&(rank as u32).to_le_bytes());
    h
}

/// Exchanges hellos on a fresh connection and verifies them. The
/// *dialer* announces itself first and expects `expect_peer` back; the
/// acceptor (`expect_peer == None`) reads first and learns who called.
/// Returns the verified peer rank and the stream.
fn handshake(
    rank: usize,
    size: usize,
    epoch: u64,
    stream: Stream,
    expect_peer: Option<usize>,
    deadline: Instant,
) -> MpsResult<(usize, Stream)> {
    let mut stream = stream;
    let _span = tc_trace::span(tc_trace::names::FABRIC_HANDSHAKE, tc_trace::Category::Comm)
        .arg("rank", rank);
    if let Stream::Tcp(t) = &stream {
        let _ = t.set_nodelay(true);
    }
    let started = Instant::now();
    let remaining = deadline.saturating_duration_since(started).max(POLL);
    stream.set_read_timeout(Some(remaining)).map_err(|e| io_error(rank, "handshake", &e))?;
    // A stalled peer (connected but silent, or half-open) surfaces as
    // a typed Timeout naming it, distinct from protocol mismatches —
    // the accept loop drops such dialers and keeps going.
    let stall = |what: &str, e: &std::io::Error| {
        use std::io::ErrorKind;
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            let who = match expect_peer {
                Some(p) => format!("rank {p}"),
                None => "an unidentified dialer (half-open connection?)".to_string(),
            };
            MpsError::Timeout {
                rank,
                src: expect_peer.unwrap_or(rank),
                op: "handshake",
                tag: 0,
                waited: started.elapsed(),
                report: format!("  handshake with {who} stalled in {what}"),
            }
        } else {
            io_error(rank, &format!("handshake {what}"), e)
        }
    };
    let ours = encode_hello(epoch, size, rank);
    let theirs = {
        let mut buf = [0u8; HELLO_LEN];
        if expect_peer.is_some() {
            // Dialer: speak first, then listen.
            stream.write_all(&ours).map_err(|e| stall("write", &e))?;
            stream.read_exact(&mut buf).map_err(|e| stall("read", &e))?;
        } else {
            // Acceptor: listen first, then answer.
            stream.read_exact(&mut buf).map_err(|e| stall("read", &e))?;
            stream.write_all(&ours).map_err(|e| stall("write", &e))?;
        }
        buf
    };
    let fail = |msg: String| MpsError::Protocol { rank, msg };
    if &theirs[..8] != MAGIC {
        return Err(fail("handshake magic mismatch (not a tc-mps socket peer)".into()));
    }
    let version = u32::from_le_bytes(theirs[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(fail(format!(
            "wire protocol version mismatch: ours {VERSION}, theirs {version}"
        )));
    }
    let their_epoch = u64::from_le_bytes(theirs[12..20].try_into().unwrap());
    if their_epoch != epoch {
        return Err(fail(format!(
            "epoch mismatch: ours {epoch}, theirs {their_epoch} (stale peer?)"
        )));
    }
    let their_size = u32::from_le_bytes(theirs[20..24].try_into().unwrap()) as usize;
    if their_size != size {
        return Err(fail(format!("universe size mismatch: ours {size}, theirs {their_size}")));
    }
    let peer = u32::from_le_bytes(theirs[24..28].try_into().unwrap()) as usize;
    if peer >= size {
        return Err(fail(format!("peer announces rank {peer} outside universe of {size}")));
    }
    if let Some(expected) = expect_peer {
        if peer != expected {
            return Err(fail(format!("dialed rank {expected} but rank {peer} answered")));
        }
    }
    Ok((peer, stream))
}

fn io_error(rank: usize, what: &str, e: &std::io::Error) -> MpsError {
    MpsError::Protocol { rank, msg: format!("socket fabric {what} failed: {e}") }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            parse_endpoint(0, "unix:/tmp/r0.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/r0.sock"))
        );
        assert_eq!(
            parse_endpoint(0, "/tmp/r1.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/r1.sock"))
        );
        assert_eq!(
            parse_endpoint(0, "127.0.0.1:9000").unwrap(),
            Endpoint::Tcp("127.0.0.1:9000".into())
        );
        assert!(matches!(parse_endpoint(2, "garbage"), Err(MpsError::Protocol { rank: 2, .. })));
    }

    #[test]
    fn hello_roundtrip_fields() {
        let h = encode_hello(0xDEAD_BEEF, 16, 11);
        assert_eq!(&h[..8], MAGIC);
        assert_eq!(u32::from_le_bytes(h[8..12].try_into().unwrap()), VERSION);
        assert_eq!(u64::from_le_bytes(h[12..20].try_into().unwrap()), 0xDEAD_BEEF);
        assert_eq!(u32::from_le_bytes(h[20..24].try_into().unwrap()), 16);
        assert_eq!(u32::from_le_bytes(h[24..28].try_into().unwrap()), 11);
    }
}
