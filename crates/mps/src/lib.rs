//! # tc-mps — message-passing substrate
//!
//! A stand-in for MPI used by the triangle-counting workspace, with a
//! pluggable fabric: by default each *rank* is an OS thread with
//! private state exchanging typed messages through per-rank mailboxes
//! ([`Universe::run`]), or each rank is its own **OS process**
//! connected over Unix-domain/TCP sockets
//! ([`Universe::try_run_socket`] + [`SocketConfig`]). Either way,
//! ranks run the usual collective algorithms (dissemination barrier,
//! binomial broadcast/reduce, recursive-doubling scans, pairwise
//! personalized all-to-all) over the same communicator code.
//!
//! The runtime is designed to be *un-hangable*: a panicking rank wakes
//! every peer with [`MpsError::PeerFailed`], blocked receives give up
//! after a configurable deadline ([`MpsError::Timeout`], env var
//! [`RECV_TIMEOUT_ENV`]) with a dump of what every rank was doing, and
//! ranks that diverge in their collective call sequence are caught by
//! [`MpsError::CollectiveMismatch`] instead of deadlocking or decoding
//! garbage.
//!
//! The public surface mirrors the subset of MPI that the ICPP 2019
//! paper's algorithm needs:
//!
//! - [`Universe::run`] — `mpirun` analogue: spawn `p` ranks, join.
//!   [`Universe::try_run`] is the fallible variant whose rank bodies
//!   propagate [`MpsError`]s instead of panicking.
//! - [`Comm`] — point-to-point `send`/`recv` with tag matching plus
//!   collectives as methods; nonblocking `isend`/`irecv` return
//!   request handles ([`SendRequest`]/[`RecvRequest`]) whose waits
//!   keep every un-hangable guarantee.
//! - [`Grid`] — `√p × √p` process grid with Cannon-style
//!   `shift_left`/`shift_up` (plus `*_start` nonblocking variants
//!   that overlap the transfer with compute).
//! - [`BlobBuilder`]/[`BlobReader`] — single-allocation serialization
//!   of sparse blocks (paper §5.2 "reducing overheads associated with
//!   communication").
//! - [`CommStats`]/[`Timings`] — per-rank bytes/messages/blocked-time
//!   instrumentation behind the paper's Figure 3 and §5.4 analysis.
//! - [`FaultPlan`]/[`LinkFaults`] — deterministic chaos injection:
//!   installing a plan (via [`UniverseConfig`]`::chaos`, [`Observe`],
//!   or the strictly parsed `MPS_CHAOS_*` env family) routes every
//!   message through a reliable-delivery transport (CRC32C-framed,
//!   sequence-numbered, NACK/retransmit) that must mask each injected
//!   delay/drop/duplicate/reorder/truncate/bit-flip or surface a typed
//!   [`MpsError::DeliveryFailed`]. With no plan installed the
//!   transport is compiled around entirely — one relaxed atomic load
//!   per operation, zero allocation. On the socket backend the
//!   reliable transport is always on: every payload crosses the wire
//!   framed and checksummed, and the same chaos plans apply to real
//!   inter-process links.
//!
//! ## Example
//!
//! ```
//! use tc_mps::Universe;
//!
//! // Sum rank ids with an allreduce across 4 ranks.
//! let sums = Universe::run(4, |comm| comm.allreduce_sum_u64(comm.rank() as u64).unwrap());
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

#![warn(missing_docs)]

mod blob;
mod chaos;
mod collectives;
mod comm;
pub mod cputime;
mod error;
mod fabric;
mod fabric_local;
mod fabric_socket;
mod grid;
pub mod pod;
mod reliable;
mod stats;
mod universe;

pub use blob::{blob_sections3, BlobBuilder, BlobReader};
pub use chaos::{
    FaultKind, FaultPlan, LinkFaults, CHAOS_BITFLIP_ENV, CHAOS_CRASH_AT_ENV, CHAOS_CRASH_RANK_ENV,
    CHAOS_DELAY_ENV, CHAOS_DELAY_MAX_US_ENV, CHAOS_DROP_ENV, CHAOS_DUPLICATE_ENV, CHAOS_ENV_VARS,
    CHAOS_LINKS_ENV, CHAOS_MAX_RETRIES_ENV, CHAOS_REORDER_ENV, CHAOS_SEED_ENV, CHAOS_TRUNCATE_ENV,
};
pub use comm::{waitall, Comm, RecvRequest, SendRequest, MAX_USER_TAG};
pub use cputime::{thread_cpu_now, CpuTimer};
pub use error::{MpsError, MpsResult};
pub use grid::{perfect_square_side, Grid};
pub use pod::{Pod, PodArray};
pub use stats::{CommStats, PhaseGuard, ReliabilityStats, Timings};
pub use universe::{
    strict_env, Observe, SocketConfig, Universe, UniverseConfig, FABRIC_EPOCH_ENV,
    FABRIC_PEERS_ENV, FABRIC_RANK_ENV, HANDSHAKE_TIMEOUT_MS_ENV, RECV_TIMEOUT_ENV,
};
