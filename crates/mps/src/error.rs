//! Typed failures of the message-passing runtime.
//!
//! The substrate guarantees that no rank blocks forever: when a peer
//! panics or returns an error, every blocked receive and collective on
//! every other rank wakes up and returns [`MpsError::PeerFailed`]; when
//! a message genuinely never arrives (a protocol bug), the receive
//! gives up after a configurable deadline and returns
//! [`MpsError::Timeout`] together with a per-rank diagnostic dump; and
//! when two ranks call *different* collectives at the same program
//! point, the receiver detects the crossed operation and returns
//! [`MpsError::CollectiveMismatch`] instead of mis-parsing the payload.

use std::time::Duration;

/// A failure of a communication operation.
///
/// All variants identify the rank that *observed* the failure and
/// carry enough context to reconstruct what the universe was doing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpsError {
    /// A peer rank panicked or returned an error, so the operation can
    /// never complete.
    PeerFailed {
        /// The rank that failed first.
        rank: usize,
        /// The panic payload or error message of that rank.
        msg: String,
    },
    /// No matching message arrived within the receive deadline.
    Timeout {
        /// The rank whose receive expired.
        rank: usize,
        /// The source rank the receive was waiting on.
        src: usize,
        /// The operation blocked (`"recv"`, `"barrier"`, …).
        op: &'static str,
        /// The awaited message tag.
        tag: u64,
        /// How long the receive waited.
        waited: Duration,
        /// Per-rank diagnostic dump taken when the deadline expired:
        /// which operation each rank was blocked in (if any) and its
        /// communication counters.
        report: String,
    },
    /// Two ranks executed different collective operations at the same
    /// program point (e.g. one called `barrier` while another called
    /// `allreduce`, or payload element types differ).
    CollectiveMismatch {
        /// The rank that detected the crossed collective.
        rank: usize,
        /// The peer whose message revealed the mismatch.
        peer: usize,
        /// What this rank was executing.
        expected: String,
        /// What the peer was executing.
        got: String,
    },
    /// A message arrived intact but its contents violate the
    /// application-level protocol (e.g. a per-edge credit referencing
    /// an edge the receiving rank does not own). The run fails cleanly
    /// instead of tearing the rank down through panic propagation.
    Protocol {
        /// The rank that rejected the payload.
        rank: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A peer's connection dropped while the fabric was running in
    /// recoverable mode: the process behind it is gone (crashed or
    /// killed), but the universe is *restartable* — a supervisor can
    /// respawn the rank and every survivor can rejoin at the next
    /// epoch. Distinct from [`MpsError::PeerFailed`] (an orderly
    /// application-level failure) so session loops can tell "respawn
    /// and rejoin" apart from "give up".
    PeerDown {
        /// The rank whose connection was lost.
        rank: usize,
    },
    /// The reliable transport exhausted its retransmit budget for one
    /// frame: the link `src → dst` is lossier than the configured
    /// retry count can mask (e.g. a chaos plan dropping 100% of a
    /// link). Surfaced by the *receiver* instead of hanging.
    DeliveryFailed {
        /// Sending side of the dead link.
        src: usize,
        /// Receiving side (the rank reporting the failure).
        dst: usize,
        /// First sequence number that never got through.
        seq: u64,
        /// Recovery rounds driven before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsError::PeerFailed { rank, msg } => {
                write!(f, "peer rank {rank} failed: {msg}")
            }
            MpsError::Timeout { rank, src, op, tag, waited, report } => {
                write!(
                    f,
                    "rank {rank}: {op} from rank {src} (tag {tag:#x}) timed out after \
                     {waited:.1?}\n{report}"
                )
            }
            MpsError::CollectiveMismatch { rank, peer, expected, got } => {
                write!(
                    f,
                    "rank {rank}: collective mismatch: this rank is in {expected} but \
                     rank {peer} sent {got}"
                )
            }
            MpsError::Protocol { rank, msg } => {
                write!(f, "rank {rank}: protocol violation: {msg}")
            }
            MpsError::PeerDown { rank } => {
                write!(f, "peer rank {rank} is down (connection lost in recoverable mode)")
            }
            MpsError::DeliveryFailed { src, dst, seq, attempts } => {
                write!(
                    f,
                    "rank {dst}: delivery from rank {src} failed at frame seq {seq} \
                     after {attempts} retransmit attempts"
                )
            }
        }
    }
}

impl std::error::Error for MpsError {}

/// Shorthand for results of communication operations.
pub type MpsResult<T> = Result<T, MpsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpsError::PeerFailed { rank: 3, msg: "boom".into() };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("boom"));

        let t = MpsError::Timeout {
            rank: 1,
            src: 0,
            op: "barrier",
            tag: 0x8100_0000_0000_0000,
            waited: Duration::from_secs(5),
            report: "rank 0: blocked in recv".into(),
        };
        let s = t.to_string();
        assert!(s.contains("barrier"));
        assert!(s.contains("timed out"));
        assert!(s.contains("blocked in recv"));

        let m = MpsError::CollectiveMismatch {
            rank: 0,
            peer: 1,
            expected: "barrier (seq 4)".into(),
            got: "reduce (seq 4)".into(),
        };
        assert!(m.to_string().contains("mismatch"));

        let p = MpsError::Protocol { rank: 2, msg: "credited edge (3,4) has no local task".into() };
        assert!(p.to_string().contains("rank 2"));
        assert!(p.to_string().contains("protocol violation"));
        assert!(p.to_string().contains("(3,4)"));

        let down = MpsError::PeerDown { rank: 5 };
        let s = down.to_string();
        assert!(s.contains("rank 5"), "{s}");
        assert!(s.contains("down"), "{s}");

        let d = MpsError::DeliveryFailed { src: 1, dst: 6, seq: 42, attempts: 16 };
        let s = d.to_string();
        assert!(s.contains("rank 6"), "{s}");
        assert!(s.contains("rank 1"), "{s}");
        assert!(s.contains("seq 42"), "{s}");
        assert!(s.contains("16 retransmit attempts"), "{s}");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(MpsError::PeerFailed { rank: 0, msg: "x".into() });
        assert!(e.to_string().contains("failed"));
    }
}
