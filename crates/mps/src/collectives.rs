//! Collective operations built on point-to-point messages.
//!
//! The algorithms are the textbook ones an MPI implementation would
//! use: dissemination barrier, binomial-tree broadcast and reduce,
//! recursive-doubling (Hillis–Steele) scans, and pairwise exchange for
//! the personalized all-to-all. Every collective must be called by all
//! ranks in the same order; a per-`Comm` sequence number embedded in
//! the internal tag enforces matching between concurrent collectives
//! and user traffic, and a crossed sequence (two ranks in *different*
//! collectives at the same position) surfaces as
//! [`MpsError::CollectiveMismatch`] instead of a hang or garbage
//! decode. In debug builds every typed payload additionally carries an
//! element-size stamp, so calling e.g. `allreduce::<u32>` against
//! `allreduce::<u64>` is caught even though the tags agree.

use bytes::Bytes;

use crate::comm::{coll_op_name, Comm, COLL_SEQ_MASK};
use crate::error::{MpsError, MpsResult};
use crate::pod::{bytes_of, vec_from_bytes, Pod};

const OP_BARRIER: u64 = 1;
const OP_BCAST: u64 = 2;
const OP_REDUCE: u64 = 3;
const OP_SCAN: u64 = 4;
const OP_GATHER: u64 = 5;
const OP_ALLTOALL: u64 = 6;
const OP_ALLGATHER: u64 = 7;
const OP_SCATTER: u64 = 8;

/// Serializes a typed collective payload. Debug builds prepend the
/// element size so type mismatches across ranks are detectable.
fn coll_encode<T: Pod>(data: &[T]) -> Bytes {
    let body = bytes_of(data);
    if cfg!(debug_assertions) {
        let mut buf = Vec::with_capacity(8 + body.len());
        buf.extend_from_slice(&(std::mem::size_of::<T>() as u64).to_le_bytes());
        buf.extend_from_slice(body);
        Bytes::from(buf)
    } else {
        Bytes::from(body.to_vec())
    }
}

impl Comm {
    /// Decodes a typed collective payload, checking the debug stamp.
    fn coll_decode<T: Pod>(&self, src: usize, tag: u64, raw: &Bytes) -> MpsResult<Vec<T>> {
        let body = if cfg!(debug_assertions) {
            assert!(raw.len() >= 8, "collective payload shorter than its debug stamp");
            let mut stamp = [0u8; 8];
            stamp.copy_from_slice(&raw[..8]);
            let elem = u64::from_le_bytes(stamp);
            if elem != std::mem::size_of::<T>() as u64 {
                return Err(MpsError::CollectiveMismatch {
                    rank: self.rank(),
                    peer: src,
                    expected: format!(
                        "{} (seq {}) with {}-byte elements",
                        coll_op_name(tag),
                        tag & COLL_SEQ_MASK,
                        std::mem::size_of::<T>()
                    ),
                    got: format!(
                        "{} (seq {}) with {elem}-byte elements",
                        coll_op_name(tag),
                        tag & COLL_SEQ_MASK
                    ),
                });
            }
            raw.slice(8..)
        } else {
            raw.clone()
        };
        Ok(vec_from_bytes(&body))
    }

    /// Typed receive inside a collective: recv + stamped decode.
    fn coll_recv<T: Pod>(&self, src: usize, tag: u64) -> MpsResult<Vec<T>> {
        let raw = self.recv_internal(src, tag)?;
        self.coll_decode(src, tag, &raw)
    }

    /// Blocks until every rank has entered the barrier.
    ///
    /// Dissemination algorithm: ⌈log₂ p⌉ rounds, in round `r` rank `i`
    /// signals `i + 2^r` and waits for `i - 2^r` (mod p).
    pub fn barrier(&self) -> MpsResult<()> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let base = self.next_coll_tag(OP_BARRIER);
        let _tspan = self.coll_span(base);
        let mut round = 0u64;
        let mut d = 1usize;
        while d < p {
            let to = (self.rank() + d) % p;
            let from = (self.rank() + p - d) % p;
            self.send_internal(to, base + (round << 40), Bytes::new());
            let _ = self.recv_internal(from, base + (round << 40))?;
            d <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcasts `data` from `root` to all ranks; every rank returns
    /// the broadcast value. Binomial tree, ⌈log₂ p⌉ message hops deep.
    pub fn bcast<T: Pod>(&self, root: usize, data: &[T]) -> MpsResult<Vec<T>> {
        assert!(root < self.size(), "bcast root {root} out of range");
        let p = self.size();
        let tag = self.next_coll_tag(OP_BCAST);
        let _tspan = self.coll_span(tag);
        if p == 1 {
            return Ok(data.to_vec());
        }
        let rel = (self.rank() + p - root) % p;

        let mut buf: Option<Vec<T>> = if rel == 0 { Some(data.to_vec()) } else { None };
        // Receive phase: the lowest set bit of `rel` identifies the parent.
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let parent = (rel - mask + root) % p;
                buf = Some(self.coll_recv(parent, tag)?);
                break;
            }
            mask <<= 1;
        }
        if rel == 0 {
            mask = p.next_power_of_two();
        }
        // Send phase: forward to children at offsets below the bit on
        // which this rank received (all bits for the root).
        let payload = buf.expect("bcast buffer present after receive phase");
        let raw = coll_encode(&payload);
        let mut mask = mask >> 1;
        while mask > 0 {
            if rel + mask < p {
                let child = (rel + mask + root) % p;
                self.send_internal(child, tag, raw.clone());
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Broadcasts a single value from `root`.
    pub fn bcast_val<T: Pod>(&self, root: usize, value: T) -> MpsResult<T> {
        Ok(self.bcast(root, std::slice::from_ref(&value))?[0])
    }

    /// Element-wise reduction to `root`; returns `Some(result)` on the
    /// root and `None` elsewhere. All ranks must pass equal-length
    /// slices. Binomial tree.
    pub fn reduce<T: Pod>(
        &self,
        root: usize,
        data: &[T],
        op: impl Fn(&mut T, &T),
    ) -> MpsResult<Option<Vec<T>>> {
        assert!(root < self.size(), "reduce root {root} out of range");
        let p = self.size();
        let tag = self.next_coll_tag(OP_REDUCE);
        let _tspan = self.coll_span(tag);
        let rel = (self.rank() + p - root) % p;
        let mut acc = data.to_vec();

        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let parent = (rel - mask + root) % p;
                self.send_internal(parent, tag, coll_encode(&acc));
                return Ok(None);
            }
            if rel + mask < p {
                let child = (rel + mask + root) % p;
                let theirs: Vec<T> = self.coll_recv(child, tag)?;
                assert_eq!(theirs.len(), acc.len(), "reduce length mismatch across ranks");
                for (a, b) in acc.iter_mut().zip(theirs.iter()) {
                    op(a, b);
                }
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Element-wise reduction delivered to every rank
    /// (reduce-to-0 + broadcast).
    pub fn allreduce<T: Pod>(&self, data: &[T], op: impl Fn(&mut T, &T)) -> MpsResult<Vec<T>> {
        match self.reduce(0, data, op)? {
            Some(v) => self.bcast(0, &v),
            None => self.bcast(0, &[]),
        }
    }

    /// Sum-allreduce of one `u64`.
    pub fn allreduce_sum_u64(&self, v: u64) -> MpsResult<u64> {
        Ok(self.allreduce(&[v], |a, b| *a += *b)?[0])
    }

    /// Max-allreduce of one `u64`.
    pub fn allreduce_max_u64(&self, v: u64) -> MpsResult<u64> {
        Ok(self.allreduce(&[v], |a, b| *a = (*a).max(*b))?[0])
    }

    /// Min-allreduce of one `u64`.
    pub fn allreduce_min_u64(&self, v: u64) -> MpsResult<u64> {
        Ok(self.allreduce(&[v], |a, b| *a = (*a).min(*b))?[0])
    }

    /// Sum-allreduce of one `f64`.
    pub fn allreduce_sum_f64(&self, v: f64) -> MpsResult<f64> {
        Ok(self.allreduce(&[v], |a, b| *a += *b)?[0])
    }

    /// Element-wise *inclusive* prefix scan: rank `i` receives
    /// `data₀ op data₁ op … op dataᵢ`. Recursive doubling,
    /// ⌈log₂ p⌉ rounds (the `dmax · log p` term of the paper's
    /// preprocessing cost model comes from this primitive applied to
    /// degree histograms).
    pub fn scan<T: Pod>(&self, data: &[T], op: impl Fn(&mut T, &T)) -> MpsResult<Vec<T>> {
        let p = self.size();
        let tag = self.next_coll_tag(OP_SCAN);
        let _tspan = self.coll_span(tag);
        let mut acc = data.to_vec();
        let mut d = 1usize;
        let mut round = 0u64;
        while d < p {
            let rtag = tag + (round << 40);
            if self.rank() + d < p {
                self.send_internal(self.rank() + d, rtag, coll_encode(&acc));
            }
            if self.rank() >= d {
                let theirs: Vec<T> = self.coll_recv(self.rank() - d, rtag)?;
                assert_eq!(theirs.len(), acc.len(), "scan length mismatch across ranks");
                // Received window precedes ours: fold it in on the left.
                let mut merged = theirs;
                for (m, a) in merged.iter_mut().zip(acc.iter()) {
                    op(m, a);
                }
                acc = merged;
            }
            d <<= 1;
            round += 1;
        }
        Ok(acc)
    }

    /// Element-wise *exclusive* prefix scan; rank 0 receives
    /// `identity` in every position.
    pub fn exscan<T: Pod>(
        &self,
        data: &[T],
        identity: T,
        op: impl Fn(&mut T, &T),
    ) -> MpsResult<Vec<T>> {
        let inclusive = self.scan(data, op)?;
        let p = self.size();
        let tag = self.next_coll_tag(OP_SCAN);
        let _tspan = self.coll_span(tag);
        if self.rank() + 1 < p {
            self.send_internal(self.rank() + 1, tag, coll_encode(&inclusive));
        }
        if self.rank() == 0 {
            Ok(vec![identity; data.len()])
        } else {
            self.coll_recv(self.rank() - 1, tag)
        }
    }

    /// Exclusive prefix sum of one `u64` (rank 0 gets 0).
    pub fn exscan_sum_u64(&self, v: u64) -> MpsResult<u64> {
        Ok(self.exscan(&[v], 0, |a, b| *a += *b)?[0])
    }

    /// Gathers variable-length contributions on `root`; returns
    /// `Some(per-rank vectors)` on the root, `None` elsewhere.
    pub fn gatherv<T: Pod>(&self, root: usize, data: &[T]) -> MpsResult<Option<Vec<Vec<T>>>> {
        assert!(root < self.size(), "gatherv root {root} out of range");
        let tag = self.next_coll_tag(OP_GATHER);
        let _tspan = self.coll_span(tag);
        if self.rank() != root {
            self.send_internal(root, tag, coll_encode(data));
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.coll_recv(src, tag)?);
            }
        }
        Ok(Some(out))
    }

    /// Gathers variable-length contributions on every rank.
    #[allow(clippy::needless_range_loop)] // src doubles as the peer rank id
    pub fn allgatherv<T: Pod>(&self, data: &[T]) -> MpsResult<Vec<Vec<T>>> {
        let tag = self.next_coll_tag(OP_ALLGATHER);
        let _tspan = self.coll_span(tag);
        for dst in 0..self.size() {
            if dst != self.rank() {
                self.send_internal(dst, tag, coll_encode(data));
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(data.to_vec());
            } else {
                out.push(self.coll_recv(src, tag)?);
            }
        }
        Ok(out)
    }

    /// Personalized all-to-all: `sends[d]` goes to rank `d`; the result
    /// holds what each source rank sent here (`result[s]` from rank `s`).
    ///
    /// Implemented as `p` point-to-point sends and receives, exactly
    /// the structure the paper assumes for its `p + m/p` preprocessing
    /// communication bound.
    pub fn alltoallv<T: Pod>(&self, sends: &[Vec<T>]) -> MpsResult<Vec<Vec<T>>> {
        assert_eq!(
            sends.len(),
            self.size(),
            "alltoallv needs exactly one buffer per destination rank"
        );
        let tag = self.next_coll_tag(OP_ALLTOALL);
        let _tspan = self.coll_span(tag);
        // Stagger destinations so all ranks don't hammer rank 0 first.
        for k in 0..self.size() {
            let dst = (self.rank() + k) % self.size();
            if dst != self.rank() {
                self.send_internal(dst, tag, coll_encode(&sends[dst]));
            }
        }
        let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
        out[self.rank()] = sends[self.rank()].clone();
        for k in 0..self.size() {
            let src = (self.rank() + self.size() - k) % self.size();
            if src != self.rank() {
                out[src] = self.coll_recv(src, tag)?;
            }
        }
        Ok(out)
    }

    /// Byte-level personalized all-to-all (used for pre-serialized blobs).
    ///
    /// No debug element stamp: payloads are raw bytes by contract, so
    /// pair it only with itself across ranks.
    #[allow(clippy::needless_range_loop)] // src doubles as the peer rank id
    pub fn alltoallv_bytes(&self, sends: Vec<Bytes>) -> MpsResult<Vec<Bytes>> {
        assert_eq!(
            sends.len(),
            self.size(),
            "alltoallv needs exactly one buffer per destination rank"
        );
        let tag = self.next_coll_tag(OP_ALLTOALL);
        let _tspan = self.coll_span(tag);
        let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
        for (dst, buf) in sends.into_iter().enumerate() {
            if dst == self.rank() {
                out[dst] = buf;
            } else {
                self.send_internal(dst, tag, buf);
            }
        }
        for src in 0..self.size() {
            if src != self.rank() {
                out[src] = self.recv_internal(src, tag)?;
            }
        }
        Ok(out)
    }

    /// Personalized scatter from `root`: the root supplies one buffer
    /// per rank (`Some(buffers)`), everyone else passes `None`; each
    /// rank returns its own piece.
    ///
    /// # Panics
    ///
    /// Panics if the root's buffer count differs from the rank count,
    /// or if a non-root passes `Some`.
    pub fn scatterv<T: Pod>(&self, root: usize, data: Option<&[Vec<T>]>) -> MpsResult<Vec<T>> {
        assert!(root < self.size(), "scatterv root {root} out of range");
        let tag = self.next_coll_tag(OP_SCATTER);
        let _tspan = self.coll_span(tag);
        if self.rank() == root {
            let bufs = data.expect("root must supply the scatter buffers");
            assert_eq!(bufs.len(), self.size(), "need one scatter buffer per rank");
            for (dst, buf) in bufs.iter().enumerate() {
                if dst != root {
                    self.send_internal(dst, tag, coll_encode(buf));
                }
            }
            Ok(bufs[root].clone())
        } else {
            assert!(data.is_none(), "only the root supplies scatter buffers");
            self.coll_recv(root, tag)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;

    #[test]
    fn barrier_many_times() {
        Universe::run(8, |c| {
            for _ in 0..50 {
                c.barrier().unwrap();
            }
        });
    }

    #[test]
    fn barrier_orders_side_effects() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let after = AtomicUsize::new(0);
        Universe::run(6, |c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // Everyone must have incremented `before` by now.
            assert_eq!(before.load(Ordering::SeqCst), 6);
            after.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(after.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            for root in 0..p {
                let out = Universe::run(p, |c| {
                    let data: Vec<u32> =
                        if c.rank() == root { vec![7, 8, 9, root as u32] } else { Vec::new() };
                    c.bcast(root, &data).unwrap()
                });
                for v in out {
                    assert_eq!(v, vec![7, 8, 9, root as u32], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_val_scalar() {
        let out =
            Universe::run(7, |c| c.bcast_val(3, if c.rank() == 3 { 99u64 } else { 0 }).unwrap());
        assert!(out.iter().all(|&v| v == 99));
    }

    #[test]
    fn reduce_sum_to_each_root() {
        for p in [1usize, 4, 7] {
            for root in 0..p {
                let out = Universe::run(p, |c| {
                    c.reduce(root, &[c.rank() as u64, 1u64], |a, b| *a += *b).unwrap()
                });
                let expect: u64 = (0..p as u64).sum();
                for (r, v) in out.iter().enumerate() {
                    if r == root {
                        assert_eq!(v.as_deref(), Some(&[expect, p as u64][..]));
                    } else {
                        assert!(v.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_scalar_helpers() {
        let out = Universe::run(9, |c| {
            let r = c.rank() as u64;
            (
                c.allreduce_sum_u64(r).unwrap(),
                c.allreduce_max_u64(r).unwrap(),
                c.allreduce_min_u64(r + 3).unwrap(),
                c.allreduce_sum_f64(0.5).unwrap(),
            )
        });
        for (s, mx, mn, f) in out {
            assert_eq!(s, 36);
            assert_eq!(mx, 8);
            assert_eq!(mn, 3);
            assert!((f - 4.5).abs() < 1e-12);
        }
    }

    #[test]
    fn scan_inclusive_prefix_sums() {
        for p in [1usize, 2, 3, 6, 11] {
            let out =
                Universe::run(p, |c| c.scan(&[c.rank() as u64 + 1], |a, b| *a += *b).unwrap());
            for (r, v) in out.iter().enumerate() {
                let expect: u64 = (1..=r as u64 + 1).sum();
                assert_eq!(v[0], expect, "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn scan_is_ordered_not_commutative_safe() {
        // 2x2 matrix product (associative, non-commutative) checks
        // operand ordering: the scan must multiply strictly in rank
        // order. Entries mod a prime to avoid overflow.
        const P: u64 = 1_000_000_007;
        fn matmul(a: &mut [u64; 4], b: &[u64; 4]) {
            let m = [
                (a[0] * b[0] + a[1] * b[2]) % P,
                (a[0] * b[1] + a[1] * b[3]) % P,
                (a[2] * b[0] + a[3] * b[2]) % P,
                (a[2] * b[1] + a[3] * b[3]) % P,
            ];
            *a = m;
        }
        let mats: Vec<[u64; 4]> = (0..7u64).map(|r| [r + 1, r + 2, r * r + 3, 1]).collect();
        let out = Universe::run(7, |c| c.scan(&[mats[c.rank()]], matmul).unwrap());
        let mut expect = [1u64, 0, 0, 1];
        for (r, v) in out.iter().enumerate() {
            matmul(&mut expect, &mats[r]);
            assert_eq!(v[0], expect, "rank {r}");
        }
    }

    #[test]
    fn exscan_vector_elementwise() {
        let out =
            Universe::run(6, |c| c.exscan(&[1u64, c.rank() as u64], 0, |a, b| *a += *b).unwrap());
        for (r, v) in out.iter().enumerate() {
            assert_eq!(v[0], r as u64);
            let expect: u64 = (0..r as u64).sum();
            assert_eq!(v[1], expect);
        }
    }

    #[test]
    fn exscan_sum_scalar() {
        let out = Universe::run(8, |c| c.exscan_sum_u64(2).unwrap());
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn gatherv_collects_ragged() {
        let out = Universe::run(5, |c| {
            let mine: Vec<u32> = (0..c.rank() as u32).collect();
            c.gatherv(2, &mine).unwrap()
        });
        for (r, v) in out.iter().enumerate() {
            if r == 2 {
                let g = v.as_ref().unwrap();
                for (src, part) in g.iter().enumerate() {
                    assert_eq!(part, &(0..src as u32).collect::<Vec<_>>());
                }
            } else {
                assert!(v.is_none());
            }
        }
    }

    #[test]
    fn allgatherv_everyone_sees_everything() {
        let out =
            Universe::run(4, |c| c.allgatherv(&[c.rank() as u64 * 10, c.rank() as u64]).unwrap());
        for v in out {
            assert_eq!(v.len(), 4);
            for (src, part) in v.iter().enumerate() {
                assert_eq!(part, &vec![src as u64 * 10, src as u64]);
            }
        }
    }

    #[test]
    fn alltoallv_personalized_exchange() {
        let p = 6;
        let out = Universe::run(p, |c| {
            // Rank s sends [s*10+d; d+1] to rank d.
            let sends: Vec<Vec<u32>> =
                (0..p).map(|d| vec![(c.rank() * 10 + d) as u32; d + 1]).collect();
            c.alltoallv(&sends).unwrap()
        });
        for (d, recvd) in out.iter().enumerate() {
            for (s, part) in recvd.iter().enumerate() {
                assert_eq!(part, &vec![(s * 10 + d) as u32; d + 1], "d={d} s={s}");
            }
        }
    }

    #[test]
    fn alltoallv_bytes_roundtrip() {
        use bytes::Bytes;
        let out = Universe::run(3, |c| {
            let sends: Vec<Bytes> =
                (0..3).map(|d| Bytes::from(vec![c.rank() as u8, d as u8])).collect();
            c.alltoallv_bytes(sends).unwrap()
        });
        for (d, recvd) in out.iter().enumerate() {
            for (s, b) in recvd.iter().enumerate() {
                assert_eq!(&b[..], &[s as u8, d as u8]);
            }
        }
    }

    #[test]
    fn mixed_collectives_and_p2p_do_not_cross_match() {
        // Interleave user traffic with collectives to exercise tag
        // separation and the pending queue.
        let out = Universe::run(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send_val::<u64>(next, 42, c.rank() as u64);
            let s1 = c.allreduce_sum_u64(1).unwrap();
            let from_prev = c.recv_val::<u64>(prev, 42).unwrap();
            c.barrier().unwrap();
            let s2 = c.allreduce_sum_u64(from_prev).unwrap();
            (s1, s2)
        });
        for (s1, s2) in out {
            assert_eq!(s1, 4);
            assert_eq!(s2, 1 + 2 + 3);
        }
    }

    #[test]
    fn scatterv_delivers_per_rank_pieces() {
        for p in [1usize, 2, 5, 8] {
            for root in [0, p - 1] {
                let out = Universe::run(p, |c| {
                    let data: Option<Vec<Vec<u32>>> =
                        (c.rank() == root).then(|| (0..p).map(|d| vec![d as u32; d + 1]).collect());
                    c.scatterv(root, data.as_deref()).unwrap()
                });
                for (r, v) in out.iter().enumerate() {
                    assert_eq!(v, &vec![r as u32; r + 1], "p={p} root={root} rank={r}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one scatter buffer per rank")]
    fn scatterv_rejects_wrong_buffer_count() {
        Universe::run(2, |c| {
            let data: Option<Vec<Vec<u32>>> = (c.rank() == 0).then(|| vec![vec![1u32]]);
            c.scatterv(0, data.as_deref()).unwrap()
        });
    }

    #[test]
    fn scatterv_then_gatherv_roundtrip() {
        let p = 6;
        let out = Universe::run(p, |c| {
            let data: Option<Vec<Vec<u64>>> =
                (c.rank() == 2).then(|| (0..p).map(|d| vec![d as u64 * 7]).collect());
            let mine = c.scatterv(2, data.as_deref()).unwrap();
            c.gatherv(2, &mine).unwrap()
        });
        let g = out[2].as_ref().unwrap();
        for (d, part) in g.iter().enumerate() {
            assert_eq!(part, &vec![d as u64 * 7]);
        }
    }
}
