//! The in-process fabric backend: every rank is a thread, delivery is
//! a mailbox push behind shared memory.
//!
//! This backend keeps the pre-trait fast path intact: with no
//! [`crate::FaultPlan`] installed there is no transport, sends are a
//! single `VecDeque` push of an `Arc`-backed buffer, and the steady
//! state stays allocation-free (`zero_alloc.rs` pins this). With a
//! fault plan, the PR 5 reliable transport wraps every payload in a
//! checksummed, sequenced frame and the chaos machinery exercises the
//! full recovery protocol.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bytes::Bytes;

use crate::chaos;
use crate::error::MpsError;
use crate::fabric::{
    lock_recover, AwaitOutcome, BlockedOp, Fabric, Failure, Mailbox, Matcher, Packet, Recovery,
};
use crate::reliable::{FrameSink, Transport, TRANSPORT_TAG};
use crate::stats::SharedStats;

/// Runtime state shared by every rank thread of one in-process
/// universe.
pub(crate) struct LocalFabric {
    size: usize,
    mailboxes: Vec<Mailbox>,
    failure: Mutex<Option<Failure>>,
    finished: Vec<AtomicBool>,
    blocked: Vec<Mutex<Option<BlockedOp>>>,
    stats: Vec<SharedStats>,
    timeout: Duration,
    trace: Option<tc_trace::TraceHandle>,
    /// Reliable-delivery engine; present only when a
    /// [`crate::FaultPlan`] is installed, so the chaos-off hot path is
    /// byte-for-byte the pre-transport one.
    transport: Option<Transport>,
}

impl LocalFabric {
    pub(crate) fn new(
        size: usize,
        timeout: Duration,
        trace: Option<tc_trace::TraceHandle>,
        transport: Option<Transport>,
    ) -> Self {
        Self {
            size,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            failure: Mutex::new(None),
            finished: (0..size).map(|_| AtomicBool::new(false)).collect(),
            blocked: (0..size).map(|_| Mutex::new(None)).collect(),
            stats: (0..size).map(|_| SharedStats::default()).collect(),
            timeout,
            trace,
            transport,
        }
    }

    /// Delivers `pkt` to `dst`'s mailbox. Never blocks; delivery to a
    /// finished rank silently parks the message (the scope reclaims it).
    pub(crate) fn deliver(&self, dst: usize, pkt: Packet) {
        self.mailboxes[dst].push(pkt);
    }

    /// How many of each rank's most recent trace events a timeout
    /// report includes.
    const DUMP_TRACE_EVENTS: usize = 8;
}

impl FrameSink for LocalFabric {
    fn deliver_frame(&self, src: usize, dst: usize, frame: Bytes) {
        self.deliver(dst, Packet { src, tag: TRANSPORT_TAG, data: frame });
    }
}

impl Fabric for LocalFabric {
    fn size(&self) -> usize {
        self.size
    }

    fn timeout(&self) -> Duration {
        self.timeout
    }

    fn backend(&self) -> &'static str {
        "local"
    }

    fn transport(&self) -> Option<&Transport> {
        self.transport.as_ref()
    }

    fn shared_stats(&self, rank: usize) -> &SharedStats {
        &self.stats[rank]
    }

    fn send(&self, src: usize, dst: usize, tag: u64, data: Bytes) {
        // One relaxed atomic load gates the chaos path: with no
        // transport live anywhere in the process this compiles down to
        // the pre-transport send, allocation-free in steady state.
        if chaos::chaos_possible() {
            if let Some(t) = &self.transport {
                if let Err(e) = t.send(self, src, dst, tag, data) {
                    self.record_failure(src, e);
                }
                return;
            }
        }
        self.deliver(dst, Packet { src, tag, data });
    }

    fn await_match_until(
        &self,
        rank: usize,
        src: usize,
        deadline: std::time::Instant,
        slice: Option<std::time::Instant>,
        matcher: Matcher<'_>,
    ) -> AwaitOutcome {
        self.mailboxes[rank].await_match_until(
            deadline,
            slice,
            || self.failure(),
            || self.is_finished(src),
            matcher,
        )
    }

    fn record_failure(&self, rank: usize, error: MpsError) {
        {
            let mut slot = lock_recover(&self.failure);
            if slot.is_none() {
                *slot = Some(Failure { rank, error });
            }
        }
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    fn failure(&self) -> Option<Failure> {
        lock_recover(&self.failure).clone()
    }

    fn mark_finished(&self, rank: usize) {
        // A finishing rank first releases any frames the fault plan was
        // holding back, so a reordered frame cannot be stranded behind
        // a sender that will never transmit again.
        if let Some(t) = &self.transport {
            t.flush_rank(self, rank);
        }
        self.finished[rank].store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    fn is_finished(&self, rank: usize) -> bool {
        self.finished[rank].load(Ordering::SeqCst)
    }

    fn set_blocked(&self, rank: usize, op: Option<BlockedOp>) {
        *lock_recover(&self.blocked[rank]) = op;
    }

    fn publish_ack(&self, src: usize, dst: usize, next_seq: u64) {
        if let Some(t) = &self.transport {
            t.ack(src, dst, next_seq);
        }
    }

    fn recover(&self, src: usize, dst: usize, from_seq: u64, attempt: u32) -> Recovery {
        match &self.transport {
            Some(t) => Recovery::Resent(t.retransmit_from(self, src, dst, from_seq, attempt)),
            None => Recovery::Resent(0),
        }
    }

    fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in 0..self.size {
            let state = if self.is_finished(r) {
                "finished".to_string()
            } else {
                match lock_recover(&self.blocked[r]).as_ref() {
                    Some(b) => format!(
                        "blocked in {} from rank {} (tag {:#x}) for {:.1?}",
                        b.op,
                        b.src,
                        b.tag,
                        b.since.elapsed()
                    ),
                    None => "running".to_string(),
                }
            };
            let s = self.stats[r].snapshot();
            let inflight = self.mailboxes[r].backlog();
            let _ = writeln!(
                out,
                "  rank {r}: {state}; sent {} msgs / {} B, recvd {} msgs / {} B, \
                 {inflight} undrained",
                s.msgs_sent, s.bytes_sent, s.msgs_recv, s.bytes_recv
            );
            // With tracing live, each rank's recent events say *what*
            // it was doing on the way into the hang.
            if let Some(trace) = &self.trace {
                for line in trace.recent(r, Self::DUMP_TRACE_EVENTS) {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        out
    }
}
