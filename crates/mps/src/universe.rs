//! Rank spawning and joining.
//!
//! [`Universe::run`] is the `mpirun` of this substrate: it spawns one
//! OS thread per rank, wires the all-pairs channel fabric, runs the
//! rank body, and joins. Each rank owns disjoint state — the body only
//! receives its own [`Comm`] — so algorithms written against this API
//! port directly to a real MPI backend.

use crossbeam::channel::unbounded;

use crate::comm::{Comm, Packet};
use crate::stats::CommStats;

/// Entry point for running a fixed-size group of ranks.
pub struct Universe;

impl Universe {
    /// Runs `f` on `size` ranks and returns each rank's result,
    /// indexed by rank.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or if any rank body panics.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Self::run_with_stats(size, f).0
    }

    /// Like [`Universe::run`] but additionally returns each rank's
    /// communication counters.
    pub fn run_with_stats<T, F>(size: usize, f: F) -> (Vec<T>, Vec<CommStats>)
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        assert!(size > 0, "universe must have at least one rank");

        // channels[src][dst]: build the full matrix first, then carve
        // out per-rank sender rows and receiver columns.
        let mut senders: Vec<Vec<crossbeam::channel::Sender<Packet>>> =
            (0..size).map(|_| Vec::with_capacity(size)).collect();
        let mut receivers: Vec<Vec<crossbeam::channel::Receiver<Packet>>> =
            (0..size).map(|_| Vec::with_capacity(size)).collect();
        for sender_row in senders.iter_mut() {
            for receiver_col in receivers.iter_mut() {
                let (tx, rx) = unbounded();
                sender_row.push(tx);
                receiver_col.push(rx);
            }
        }

        let f = &f;
        let mut results: Vec<Option<(T, CommStats)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, (tx_row, rx_col)) in
                senders.drain(..).zip(receivers.drain(..)).enumerate()
            {
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(rank, size, tx_row, rx_col);
                    let out = f(&comm);
                    (out, comm.stats())
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => results[rank] = Some(pair),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });

        let mut outs = Vec::with_capacity(size);
        let mut stats = Vec::with_capacity(size);
        for slot in results {
            let (out, st) = slot.expect("every rank joined");
            outs.push(out);
            stats.push(st);
        }
        (outs, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_correct_identity() {
        let out = Universe::run(5, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |c| c.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Universe::run(0, |c| c.rank());
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its id to the next rank and reports what it got.
        let out = Universe::run(7, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send_val::<u64>(next, 7, c.rank() as u64);
            c.recv_val::<u64>(prev, 7)
        });
        for (r, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (r + 7 - 1) % 7);
        }
    }

    #[test]
    fn tag_matching_out_of_order() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_val::<u32>(1, 2, 222);
                c.send_val::<u32>(1, 1, 111);
                0
            } else {
                let first = c.recv_val::<u32>(0, 1);
                let second = c.recv_val::<u32>(0, 2);
                assert_eq!((first, second), (111, 222));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send_val::<u32>(1, 3, i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| c.recv_val::<u32>(0, 3)).collect::<Vec<u32>>()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn self_send_works() {
        let out = Universe::run(3, |c| {
            c.send(c.rank(), 9, &[1u64, 2, 3]);
            c.recv::<u64>(c.rank(), 9).into_vec()
        });
        for v in out {
            assert_eq!(v, vec![1, 2, 3]);
        }
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (_, stats) = Universe::run_with_stats(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0u32; 16]);
            } else {
                let _ = c.recv::<u32>(0, 1);
            }
        });
        assert_eq!(stats[0].bytes_sent, 64);
        assert_eq!(stats[0].msgs_sent, 1);
        assert_eq!(stats[1].bytes_recv, 64);
        assert_eq!(stats[1].msgs_recv, 1);
        assert_eq!(stats[1].bytes_sent, 0);
    }

    #[test]
    fn sendrecv_exchanges_between_pair() {
        let out = Universe::run(2, |c| {
            let peer = 1 - c.rank();
            let mine = [c.rank() as u32 * 10];
            c.sendrecv::<u32>(peer, 5, &mine, peer, 5).as_slice()[0]
        });
        assert_eq!(out, vec![10, 0]);
    }

    #[test]
    fn many_ranks_all_to_all_manual() {
        let p = 9;
        let out = Universe::run(p, |c| {
            for d in 0..p {
                c.send_val::<u64>(d, 11, (c.rank() * 100 + d) as u64);
            }
            let mut sum = 0u64;
            for s in 0..p {
                sum += c.recv_val::<u64>(s, 11);
            }
            sum
        });
        for (r, s) in out.iter().enumerate() {
            let expect: u64 = (0..p).map(|src| (src * 100 + r) as u64).sum();
            assert_eq!(*s, expect);
        }
    }
}
