//! Rank spawning and joining.
//!
//! [`Universe::run`] is the `mpirun` of this substrate: it spawns one
//! OS thread per rank, wires the shared mailbox fabric, runs the rank
//! body, and joins. Each rank owns disjoint state — the body only
//! receives its own [`Comm`] — so algorithms written against this API
//! port directly to a real MPI backend.
//!
//! ## Failure semantics
//!
//! A rank body that panics or (in the `try_` variants) returns an
//! error is recorded in the shared fabric and wakes every peer blocked
//! in a receive or collective; those peers observe
//! [`MpsError::PeerFailed`]. The universe therefore always joins:
//! [`Universe::try_run`] returns the *first* failure, and
//! [`Universe::run`] panics with it — neither ever hangs on a dead
//! peer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::chaos::FaultPlan;
use crate::comm::Comm;
use crate::error::{MpsError, MpsResult};
use crate::fabric::Fabric;
use crate::fabric_local::LocalFabric;
use crate::fabric_socket::{SocketFabric, WireSnapshot};
use crate::reliable::Transport;
use crate::stats::{CommStats, ReliabilityStats};

/// Environment variable overriding the default receive deadline, in
/// milliseconds.
pub const RECV_TIMEOUT_ENV: &str = "MPS_RECV_TIMEOUT_MS";

/// This process's rank index for the socket backend
/// ([`SocketConfig::from_env`]).
pub const FABRIC_RANK_ENV: &str = "MPS_FABRIC_RANK";

/// Comma-separated endpoint list (one per rank, rank order) for the
/// socket backend: Unix paths (`unix:/tmp/r0.sock` or any value
/// containing `/`) or TCP `host:port` pairs.
pub const FABRIC_PEERS_ENV: &str = "MPS_FABRIC_PEERS";

/// Epoch tag every handshake must agree on, so a stale process from a
/// previous launch cannot join the universe. Defaults to 0.
pub const FABRIC_EPOCH_ENV: &str = "MPS_FABRIC_EPOCH";

/// Per-connection handshake budget in milliseconds for the socket
/// backend's accept loop, so a stalled or half-open dialer cannot
/// wedge the listener forever. Defaults to 10 s.
pub const HANDSHAKE_TIMEOUT_MS_ENV: &str = "MPS_HANDSHAKE_TIMEOUT_MS";

const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// The one strict parser behind every `MPS_*` environment knob
/// (`MPS_RECV_TIMEOUT_MS`, the `MPS_CHAOS_*` family, and the
/// `MPS_SERVE_*` family consumed by `tc-serve`): returns `None` when
/// `name` is unset, the parsed value when it parses after trimming,
/// and otherwise panics **loudly at universe construction**, naming
/// the offending variable and echoing its value — a mistyped knob in
/// CI must never masquerade as a configured one.
pub fn strict_env<T: std::str::FromStr>(name: &str, what: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(raw) => match raw.trim().parse::<T>() {
            Ok(v) => Some(v),
            Err(e) => {
                panic!("{name}={raw:?} is not a valid {what} ({e}); unset it or set a valid value")
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(e) => panic!("{name} is set but unreadable: {e}"),
    }
}

/// Tunables of one universe.
#[derive(Debug, Clone, Default)]
pub struct UniverseConfig {
    /// How long a receive (or collective step) may block before it
    /// gives up with [`MpsError::Timeout`]. `None` means the default
    /// of 60 s, overridable through [`RECV_TIMEOUT_ENV`].
    ///
    /// # Panics (at universe construction)
    ///
    /// When this is `None` and [`RECV_TIMEOUT_ENV`] is set to
    /// something that does not parse as a `u64` millisecond count,
    /// universe construction panics loudly instead of silently
    /// running with the default — a mistyped deadline in CI must not
    /// masquerade as a configured one.
    pub recv_timeout: Option<Duration>,
    /// When set, every rank thread binds itself to this trace session
    /// for its lifetime, and the fabric enriches timeout reports with
    /// each rank's most recent trace events.
    pub trace: Option<tc_trace::TraceHandle>,
    /// When set, every rank thread binds itself to this metrics
    /// session for its lifetime, and the universe feeds each rank's
    /// communication counters (bytes/messages/blocked time and the
    /// collective call count) into the registry when the rank body
    /// finishes — the registry view is derived from the same
    /// `SharedStats` the timeout diagnostics read, not a second set
    /// of increment sites.
    pub metrics: Option<tc_metrics::MetricsHandle>,
    /// When set, the universe runs the reliable-delivery transport and
    /// injects the plan's faults. `None` means "ask the environment":
    /// any set `MPS_CHAOS_*` variable activates
    /// [`FaultPlan::from_env`]; with none set, the universe runs the
    /// pre-transport zero-overhead path.
    pub chaos: Option<FaultPlan>,
}

impl UniverseConfig {
    /// A config with an explicit receive deadline and no tracing.
    pub fn with_timeout(recv_timeout: Duration) -> Self {
        Self { recv_timeout: Some(recv_timeout), ..Self::default() }
    }

    /// The effective receive deadline: the explicit value if set,
    /// otherwise [`RECV_TIMEOUT_ENV`] (which must parse — see the
    /// field docs), otherwise 60 s.
    pub fn effective_recv_timeout(&self) -> Duration {
        if let Some(t) = self.recv_timeout {
            return t;
        }
        strict_env::<u64>(RECV_TIMEOUT_ENV, "millisecond count")
            .map_or(DEFAULT_RECV_TIMEOUT, Duration::from_millis)
    }

    /// The effective fault plan: the explicit value if set, otherwise
    /// whatever the `MPS_CHAOS_*` environment family describes (which
    /// must parse strictly — see [`FaultPlan::from_env`]), otherwise
    /// none (transport off).
    pub fn effective_chaos(&self) -> Option<FaultPlan> {
        self.chaos.clone().or_else(FaultPlan::from_env)
    }
}

/// Entry point for running a fixed-size group of ranks.
pub struct Universe;

impl Universe {
    /// Runs `f` on `size` ranks and returns each rank's result,
    /// indexed by rank.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or if any rank fails (panic or
    /// communication error) — but never hangs: surviving ranks are
    /// woken and joined first.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        Self::run_with_stats(size, f).0
    }

    /// Like [`Universe::run`] but additionally returns each rank's
    /// communication counters.
    pub fn run_with_stats<T, F>(size: usize, f: F) -> (Vec<T>, Vec<CommStats>)
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        match Self::try_run_with_stats(size, |c| Ok(f(c))) {
            Ok(pair) => pair,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Universe::run`]: the body returns a
    /// `Result`, and the universe returns the first failure (body
    /// error or panic) after every rank has been joined.
    pub fn try_run<T, F>(size: usize, f: F) -> MpsResult<Vec<T>>
    where
        T: Send,
        F: Fn(&Comm) -> MpsResult<T> + Sync,
    {
        Ok(Self::try_run_with_stats(size, f)?.0)
    }

    /// Fallible variant of [`Universe::run_with_stats`].
    pub fn try_run_with_stats<T, F>(size: usize, f: F) -> MpsResult<(Vec<T>, Vec<CommStats>)>
    where
        T: Send,
        F: Fn(&Comm) -> MpsResult<T> + Sync,
    {
        Self::try_run_config(size, &UniverseConfig::default(), f)
    }

    /// [`Universe::try_run_with_stats`] with explicit tunables
    /// (primarily a custom receive deadline).
    pub fn try_run_config<T, F>(
        size: usize,
        config: &UniverseConfig,
        f: F,
    ) -> MpsResult<(Vec<T>, Vec<CommStats>)>
    where
        T: Send,
        F: Fn(&Comm) -> MpsResult<T> + Sync,
    {
        assert!(size > 0, "universe must have at least one rank");
        let timeout = config.effective_recv_timeout();
        let transport = config.effective_chaos().map(|plan| Transport::new(size, plan));
        let fabric: Arc<dyn Fabric> =
            Arc::new(LocalFabric::new(size, timeout, config.trace.clone(), transport));

        let f = &f;
        let trace = &config.trace;
        let metrics = &config.metrics;
        let mut results: Vec<Option<(T, CommStats)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for rank in 0..size {
                let fabric = Arc::clone(&fabric);
                handles.push(scope.spawn(move || {
                    let _trace_guard = trace.as_ref().map(|h| h.register_rank(rank));
                    let _metrics_guard = metrics.as_ref().map(|h| h.register_rank(rank));
                    let comm = Comm::new(rank, size, Arc::clone(&fabric));
                    let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    let stats = comm.stats();
                    feed_comm_metrics(&stats, comm.collective_calls());
                    if let Some(rel) = comm.reliability_stats() {
                        feed_reliability_metrics(&rel);
                    }
                    match out {
                        Ok(Ok(value)) => {
                            fabric.mark_finished(rank);
                            Some((value, stats))
                        }
                        Ok(Err(err)) => {
                            // A body error unblocks peers like a panic
                            // does; only the first failure is kept.
                            fabric.record_failure(rank, err);
                            fabric.mark_finished(rank);
                            None
                        }
                        Err(payload) => {
                            let msg = panic_message(&*payload);
                            fabric.record_failure(rank, MpsError::PeerFailed { rank, msg });
                            fabric.mark_finished(rank);
                            None
                        }
                    }
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                // The body is wrapped in catch_unwind, so join itself
                // cannot fail.
                if let Ok(Some(pair)) = h.join() {
                    results[rank] = Some(pair);
                }
            }
        });

        if let Some(fail) = fabric.failure() {
            return Err(fail.error);
        }
        let mut outs = Vec::with_capacity(size);
        let mut stats = Vec::with_capacity(size);
        for slot in results {
            let (out, st) = slot.expect("every rank succeeded");
            outs.push(out);
            stats.push(st);
        }
        Ok((outs, stats))
    }
}

/// Mirrors one rank's communication counters into the live metrics
/// registry (no-op unless a session is live and this thread is bound
/// to a rank). The counters come from the same `SharedStats` block
/// the timeout diagnostics read — the registry is a derived view,
/// not parallel bookkeeping.
fn feed_comm_metrics(stats: &CommStats, collective_calls: u64) {
    if !tc_metrics::enabled() {
        return;
    }
    use tc_metrics::names as m;
    tc_metrics::counter_add(m::MPS_BYTES_SENT, stats.bytes_sent);
    tc_metrics::counter_add(m::MPS_MSGS_SENT, stats.msgs_sent);
    tc_metrics::counter_add(m::MPS_BYTES_RECV, stats.bytes_recv);
    tc_metrics::counter_add(m::MPS_MSGS_RECV, stats.msgs_recv);
    tc_metrics::counter_add(m::MPS_SEND_NS, stats.send_ns);
    tc_metrics::counter_add(m::MPS_RECV_NS, stats.recv_ns);
    tc_metrics::counter_add(m::MPS_COLLECTIVES, collective_calls);
}

/// Mirrors one rank's reliable-delivery counters into the live metrics
/// registry. Only runs when a transport was live (a [`FaultPlan`] was
/// installed); a clean universe records none of these, which the
/// bench-baseline gate turns into a present-and-zero assertion via the
/// registry's zero defaults.
fn feed_reliability_metrics(rel: &ReliabilityStats) {
    if !tc_metrics::enabled() {
        return;
    }
    use tc_metrics::names as m;
    tc_metrics::counter_add(m::MPS_REL_FRAMES_SENT, rel.frames_sent);
    tc_metrics::counter_add(m::MPS_REL_RETRANSMITS, rel.retransmits);
    tc_metrics::counter_add(m::MPS_REL_NACKS, rel.nacks);
    tc_metrics::counter_add(m::MPS_REL_CORRUPT_FRAMES, rel.corrupt_frames);
    tc_metrics::counter_add(m::MPS_REL_DUP_FRAMES, rel.dup_frames);
    tc_metrics::counter_add(m::MPS_REL_REORDERED_FRAMES, rel.reordered_frames);
    tc_metrics::counter_add(m::MPS_REL_REORDER_DEPTH_MAX, rel.reorder_depth_max);
    tc_metrics::counter_add(m::MPS_REL_REORDER_EVICTED, rel.reorder_evicted);
    tc_metrics::counter_add(m::MPS_REL_INJECTED_DROPS, rel.injected_drops);
    tc_metrics::counter_add(m::MPS_REL_INJECTED_DUPS, rel.injected_dups);
    tc_metrics::counter_add(m::MPS_REL_INJECTED_REORDERS, rel.injected_reorders);
    tc_metrics::counter_add(m::MPS_REL_INJECTED_DELAYS, rel.injected_delays);
    tc_metrics::counter_add(m::MPS_REL_INJECTED_CORRUPTIONS, rel.injected_corruptions);
}

/// Mirrors one rank's socket-wire counters into the live metrics
/// registry. Only socket-backed runs produce these (`mps.fabric.*`);
/// in-process runs never touch them, so baselines are unaffected.
fn feed_wire_metrics(w: &WireSnapshot) {
    if !tc_metrics::enabled() {
        return;
    }
    use tc_metrics::names as m;
    tc_metrics::counter_add(m::MPS_FABRIC_CONNECTS, w.connects);
    tc_metrics::counter_add(m::MPS_FABRIC_ACCEPTS, w.accepts);
    tc_metrics::counter_add(m::MPS_FABRIC_HANDSHAKES, w.handshakes);
    tc_metrics::counter_add(m::MPS_FABRIC_WIRE_MSGS_SENT, w.msgs_sent);
    tc_metrics::counter_add(m::MPS_FABRIC_WIRE_BYTES_SENT, w.bytes_sent);
    tc_metrics::counter_add(m::MPS_FABRIC_WIRE_MSGS_RECV, w.msgs_recv);
    tc_metrics::counter_add(m::MPS_FABRIC_WIRE_BYTES_RECV, w.bytes_recv);
    tc_metrics::counter_add(m::MPS_FABRIC_ACKS_SENT, w.acks_sent);
    tc_metrics::counter_add(m::MPS_FABRIC_NACKS_SENT, w.nacks_sent);
}

/// Configuration of one rank *process* of a socket-backed universe.
///
/// Unlike [`UniverseConfig`], which describes a whole in-process
/// universe, a `SocketConfig` describes this process's slice of a
/// multi-process one: its rank, every rank's endpoint, and the launch
/// epoch all processes must agree on.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// This process's rank (an index into `peers`).
    pub rank: usize,
    /// One endpoint per rank, in rank order: `unix:/path/sock` (or any
    /// string containing `/`) for Unix-domain sockets, `host:port` for
    /// TCP. Rank `r` binds and listens on `peers[r]`.
    pub peers: Vec<String>,
    /// Launch epoch: handshakes reject peers from a different epoch,
    /// so a stale process of a previous run cannot join.
    pub epoch: u64,
    /// Recoverable mode: a peer's lost connection surfaces as
    /// [`MpsError::PeerDown`] (a supervisor may respawn the rank and
    /// every survivor rejoin at a bumped epoch) instead of the fatal
    /// [`MpsError::PeerFailed`]. Off by default — batch runs should
    /// die loudly.
    pub recoverable: bool,
    /// Per-connection handshake budget for the accept loop. `None`
    /// means [`HANDSHAKE_TIMEOUT_MS_ENV`] or the 10 s default.
    pub handshake_timeout: Option<Duration>,
    /// The per-universe tunables (deadline, trace, metrics, chaos).
    /// A chaos plan here injects faults into the *socket* wire layer.
    pub universe: UniverseConfig,
}

impl SocketConfig {
    /// A config with epoch 0 and default universe tunables.
    pub fn new(rank: usize, peers: Vec<String>) -> Self {
        Self {
            rank,
            peers,
            epoch: 0,
            recoverable: false,
            handshake_timeout: None,
            universe: UniverseConfig::default(),
        }
    }

    /// The handshake budget one inbound connection may consume before
    /// the accept loop drops it and moves on: the explicit field wins,
    /// then [`HANDSHAKE_TIMEOUT_MS_ENV`], then 10 s.
    ///
    /// # Panics (at universe construction)
    ///
    /// When the field is `None` and the environment variable is set to
    /// something that does not parse as a `u64` millisecond count.
    pub fn effective_handshake_timeout(&self) -> Duration {
        self.handshake_timeout.unwrap_or_else(|| {
            strict_env::<u64>(HANDSHAKE_TIMEOUT_MS_ENV, "millisecond count")
                .map_or(DEFAULT_HANDSHAKE_TIMEOUT, Duration::from_millis)
        })
    }

    /// Builds a config from the `MPS_FABRIC_*` environment family, or
    /// `None` when neither [`FABRIC_RANK_ENV`] nor [`FABRIC_PEERS_ENV`]
    /// is set.
    ///
    /// # Panics
    ///
    /// Panics (naming the variable) when only one of the two required
    /// variables is set, when either does not parse strictly, or when
    /// the rank is out of range of the peer list.
    pub fn from_env() -> Option<Self> {
        let rank = strict_env::<usize>(FABRIC_RANK_ENV, "rank index");
        let peers = strict_env::<String>(FABRIC_PEERS_ENV, "endpoint list");
        let (rank, peers) = match (rank, peers) {
            (Some(r), Some(p)) => (r, p),
            (None, None) => return None,
            (Some(_), None) => {
                panic!("{FABRIC_RANK_ENV} is set but {FABRIC_PEERS_ENV} is not")
            }
            (None, Some(_)) => {
                panic!("{FABRIC_PEERS_ENV} is set but {FABRIC_RANK_ENV} is not")
            }
        };
        let peers: Vec<String> =
            peers.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        assert!(
            rank < peers.len(),
            "{FABRIC_RANK_ENV}={rank} is out of range of the {} endpoints in {FABRIC_PEERS_ENV}",
            peers.len()
        );
        let epoch = strict_env::<u64>(FABRIC_EPOCH_ENV, "unsigned integer epoch").unwrap_or(0);
        Some(Self {
            rank,
            peers,
            epoch,
            recoverable: false,
            handshake_timeout: None,
            universe: UniverseConfig::default(),
        })
    }
}

impl Universe {
    /// Runs this process's rank body of a multi-process, socket-backed
    /// universe: binds/connects to every peer per `config`, runs `f`
    /// on the resulting [`Comm`], and performs the orderly shutdown
    /// (drain, FIN exchange, teardown). Returns the body's value and
    /// this rank's communication counters, or the universe's first
    /// failure — exactly the contract one rank of
    /// [`Universe::try_run_config`] sees from the inside.
    pub fn try_run_socket<T, F>(config: &SocketConfig, f: F) -> MpsResult<(T, CommStats)>
    where
        F: FnOnce(&Comm) -> MpsResult<T>,
    {
        let rank = config.rank;
        let size = config.peers.len();
        assert!(size > 0, "universe must have at least one rank");
        assert!(rank < size, "rank {rank} out of range of {size} endpoints");
        let _trace_guard = config.universe.trace.as_ref().map(|h| h.register_rank(rank));
        let _metrics_guard = config.universe.metrics.as_ref().map(|h| h.register_rank(rank));
        let fabric = SocketFabric::connect(config)?;
        let comm = Comm::new(rank, size, Arc::clone(&fabric) as Arc<dyn Fabric>);
        let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
        let stats = comm.stats();
        feed_comm_metrics(&stats, comm.collective_calls());
        if let Some(rel) = comm.reliability_stats() {
            feed_reliability_metrics(&rel);
        }
        let value = match out {
            Ok(Ok(value)) => Some(value),
            Ok(Err(err)) => {
                fabric.record_failure(rank, err);
                None
            }
            Err(payload) => {
                let msg = panic_message(&*payload);
                fabric.record_failure(rank, MpsError::PeerFailed { rank, msg });
                None
            }
        };
        // Orderly shutdown: drain unacked frames, announce FIN, wait
        // for every peer's FIN (or the first failure), then tear the
        // connections down. On the failure path the drain is skipped —
        // peers are aborting, nobody will ack.
        fabric.mark_finished(rank);
        fabric.await_peers();
        feed_wire_metrics(&fabric.wire_stats());
        fabric.shutdown();
        if let Some(fail) = fabric.failure() {
            return Err(fail.error);
        }
        let value = value.expect("a missing value implies a recorded failure");
        Ok((value, stats))
    }
}

/// Bundle of the observability handles an instrumented entry point
/// accepts: the `*_observed` variants across `tc-core` and
/// `tc-baselines` take one `Observe` instead of growing a parameter
/// per subsystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct Observe<'a> {
    /// Trace session to bind rank threads to, if any.
    pub trace: Option<&'a tc_trace::TraceHandle>,
    /// Metrics session to bind rank threads to, if any.
    pub metrics: Option<&'a tc_metrics::MetricsHandle>,
    /// Fault plan to run the universe under, if any (activates the
    /// reliable-delivery transport).
    pub chaos: Option<&'a FaultPlan>,
}

impl<'a> Observe<'a> {
    /// Observability off: the zero-overhead default.
    pub fn none() -> Self {
        Self::default()
    }

    /// Trace-only observation (the pre-metrics `*_traced` contract).
    pub fn trace(trace: Option<&'a tc_trace::TraceHandle>) -> Self {
        Self { trace, ..Self::default() }
    }

    /// A [`UniverseConfig`] carrying these handles (default deadline).
    pub fn to_config(self) -> UniverseConfig {
        UniverseConfig {
            recv_timeout: None,
            trace: self.trace.cloned(),
            metrics: self.metrics.cloned(),
            chaos: self.chaos.cloned(),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_correct_identity() {
        let out = Universe::run(5, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |c| c.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Universe::run(0, |c| c.rank());
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its id to the next rank and reports what it got.
        let out = Universe::run(7, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send_val::<u64>(next, 7, c.rank() as u64);
            c.recv_val::<u64>(prev, 7).unwrap()
        });
        for (r, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (r + 7 - 1) % 7);
        }
    }

    #[test]
    fn tag_matching_out_of_order() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_val::<u32>(1, 2, 222);
                c.send_val::<u32>(1, 1, 111);
                0
            } else {
                let first = c.recv_val::<u32>(0, 1).unwrap();
                let second = c.recv_val::<u32>(0, 2).unwrap();
                assert_eq!((first, second), (111, 222));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100u32 {
                    c.send_val::<u32>(1, 3, i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| c.recv_val::<u32>(0, 3).unwrap()).collect::<Vec<u32>>()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn self_send_works() {
        let out = Universe::run(3, |c| {
            c.send(c.rank(), 9, &[1u64, 2, 3]);
            c.recv::<u64>(c.rank(), 9).unwrap().into_vec()
        });
        for v in out {
            assert_eq!(v, vec![1, 2, 3]);
        }
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (_, stats) = Universe::run_with_stats(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0u32; 16]);
            } else {
                let _ = c.recv::<u32>(0, 1).unwrap();
            }
        });
        assert_eq!(stats[0].bytes_sent, 64);
        assert_eq!(stats[0].msgs_sent, 1);
        assert_eq!(stats[1].bytes_recv, 64);
        assert_eq!(stats[1].msgs_recv, 1);
        assert_eq!(stats[1].bytes_sent, 0);
    }

    #[test]
    fn sendrecv_exchanges_between_pair() {
        let out = Universe::run(2, |c| {
            let peer = 1 - c.rank();
            let mine = [c.rank() as u32 * 10];
            c.sendrecv::<u32>(peer, 5, &mine, peer, 5).unwrap().as_slice()[0]
        });
        assert_eq!(out, vec![10, 0]);
    }

    #[test]
    fn many_ranks_all_to_all_manual() {
        let p = 9;
        let out = Universe::run(p, |c| {
            for d in 0..p {
                c.send_val::<u64>(d, 11, (c.rank() * 100 + d) as u64);
            }
            let mut sum = 0u64;
            for s in 0..p {
                sum += c.recv_val::<u64>(s, 11).unwrap();
            }
            sum
        });
        for (r, s) in out.iter().enumerate() {
            let expect: u64 = (0..p).map(|src| (src * 100 + r) as u64).sum();
            assert_eq!(*s, expect);
        }
    }

    #[test]
    fn try_run_collects_results() {
        let out = Universe::try_run(4, |c| c.allreduce_sum_u64(c.rank() as u64)).unwrap();
        assert_eq!(out, vec![6, 6, 6, 6]);
    }

    #[test]
    fn try_run_surfaces_body_error() {
        let err = Universe::try_run(3, |c| {
            if c.rank() == 1 {
                Err(MpsError::PeerFailed { rank: 1, msg: "synthetic".into() })
            } else {
                c.barrier()
            }
        })
        .unwrap_err();
        match err {
            MpsError::PeerFailed { rank, msg } => {
                assert_eq!(rank, 1);
                assert!(msg.contains("synthetic"), "{msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "deliberate rank panic")]
    fn run_propagates_panic_without_hanging() {
        // Rank 2 panics while everyone else enters a barrier; the
        // barrier participants must be woken, not deadlocked.
        let _ = Universe::run(4, |c| {
            if c.rank() == 2 {
                panic!("deliberate rank panic");
            }
            let _ = c.barrier();
        });
    }

    #[test]
    fn crossed_recvs_time_out_with_report() {
        // Both ranks wait for a message the other never sends: a real
        // deadlock under the old semantics. Both must time out; the
        // universe returns the first expiry as a typed Timeout.
        let cfg = UniverseConfig::with_timeout(Duration::from_millis(250));
        let err = Universe::try_run_config(2, &cfg, |c| {
            let peer = 1 - c.rank();
            c.recv_val::<u64>(peer, 99)
        })
        .unwrap_err();
        match err {
            MpsError::Timeout { rank, src, op, report, .. } => {
                assert_eq!(src, 1 - rank);
                assert_eq!(op, "recv");
                assert!(report.contains("rank 0:"), "{report}");
                assert!(report.contains("rank 1:"), "{report}");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn metrics_feed_mirrors_comm_stats_exactly() {
        let session = tc_metrics::MetricsSession::begin();
        let cfg = UniverseConfig { metrics: Some(session.handle()), ..UniverseConfig::default() };
        let (_, stats) = Universe::try_run_config(4, &cfg, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 3, &[c.rank() as u64; 8]);
            let _ = c.recv::<u64>(prev, 3)?;
            c.barrier()?;
            c.allreduce_sum_u64(1)
        })
        .unwrap();
        let snap = session.finish();
        use tc_metrics::names as m;
        assert_eq!(snap.ranks(), vec![0, 1, 2, 3]);
        for (rank, cs) in stats.iter().enumerate() {
            assert_eq!(snap.counter(rank, m::MPS_BYTES_SENT), Some(cs.bytes_sent));
            assert_eq!(snap.counter(rank, m::MPS_MSGS_SENT), Some(cs.msgs_sent));
            assert_eq!(snap.counter(rank, m::MPS_BYTES_RECV), Some(cs.bytes_recv));
            assert_eq!(snap.counter(rank, m::MPS_MSGS_RECV), Some(cs.msgs_recv));
            // Every rank enters the same collective sequence (barrier
            // + allreduce, however many internal steps that takes).
            let colls = snap.counter(rank, m::MPS_COLLECTIVES).unwrap();
            assert!(colls >= 2, "rank {rank}: {colls}");
            assert_eq!(Some(colls), snap.counter(0, m::MPS_COLLECTIVES));
        }
        let total: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        assert_eq!(snap.counter_total(m::MPS_BYTES_SENT), Some(total));
    }

    #[test]
    fn observe_bundle_builds_matching_config() {
        let session = tc_metrics::MetricsSession::begin();
        let handle = session.handle();
        let obs = Observe { metrics: Some(&handle), ..Observe::none() };
        let cfg = obs.to_config();
        assert!(cfg.metrics.is_some());
        assert!(cfg.trace.is_none());
        assert!(Observe::none().to_config().metrics.is_none());
        drop(session);
    }

    #[test]
    fn recv_from_cleanly_finished_peer_fails_fast() {
        // Rank 0 finishes without sending; rank 1's receive must fail
        // promptly (not wait out the full deadline).
        let cfg = UniverseConfig::with_timeout(Duration::from_secs(30));
        let t0 = std::time::Instant::now();
        let err = Universe::try_run_config(2, &cfg, |c| {
            if c.rank() == 0 {
                Ok(0u64)
            } else {
                c.recv_val::<u64>(0, 1)
            }
        })
        .unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(10));
        match err {
            MpsError::PeerFailed { rank, msg } => {
                assert_eq!(rank, 0);
                assert!(msg.contains("terminated"), "{msg}");
            }
            other => panic!("expected peer failure, got {other:?}"),
        }
    }
}
