//! Per-thread CPU clocks (re-exported from `tc-trace`).
//!
//! When more ranks than cores share a machine (the usual state of this
//! in-process substrate — and the extreme case of a single-core CI
//! container), per-rank *wall* times measure scheduler interleaving,
//! not algorithmic work. Per-thread CPU time keeps measuring the work
//! itself, which is what the critical-path model in
//! `tc_core::TcResult::modeled_*` aggregates: on a real cluster each
//! rank has its own core, so the slowest rank's CPU time per phase is
//! the phase's wall time.
//!
//! The implementation lives in `tc_trace` (trace spans record the same
//! clock); this module re-exports it so existing `tc_mps::cputime`
//! users keep working.

pub use tc_trace::{thread_cpu_now, CpuTimer};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn per_thread_isolation() {
        // A busy sibling thread must not advance this thread's clock.
        let t = CpuTimer::start();
        let before = t.elapsed();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut acc = 1u64;
                for i in 1..1_000_000u64 {
                    acc = acc.wrapping_mul(i | 1);
                }
                std::hint::black_box(acc);
            });
        });
        let after = t.elapsed();
        // Our own delta should be tiny (just the join bookkeeping).
        assert!(after - before < Duration::from_millis(50));
    }
}
