//! Plain-old-data byte views.
//!
//! The message-passing layer moves raw bytes; this module provides the
//! safe bridge between typed slices (`&[u32]`, `&[u64]`, …) and byte
//! buffers. Only types for which *every* bit pattern is a valid value
//! may implement [`Pod`], which is what makes the reinterpreting casts
//! below sound.

use bytes::Bytes;

/// Marker for plain-old-data types.
///
/// # Safety
///
/// Implementors must guarantee that:
/// - every bit pattern of `size_of::<Self>()` bytes is a valid value,
/// - the type has no padding bytes,
/// - the type has no interior mutability and no drop glue.
pub unsafe trait Pod: Copy + Send + 'static {}

macro_rules! impl_pod {
    ($($t:ty),* $(,)?) => {
        $(unsafe impl Pod for $t {})*
    };
}

impl_pod!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Views a typed slice as raw bytes (zero-copy).
pub fn bytes_of<T: Pod>(data: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` has no padding, so every byte of the slice is
    // initialized; the length arithmetic cannot overflow because the
    // slice already exists in memory.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Copies a byte buffer into a freshly allocated typed vector.
///
/// Works for arbitrarily aligned input (uses unaligned reads).
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn vec_from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let sz = std::mem::size_of::<T>();
    assert!(
        sz == 0 || bytes.len() % sz == 0,
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        sz
    );
    if sz == 0 {
        return Vec::new();
    }
    let n = bytes.len() / sz;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: the source holds `n * sz` initialized bytes and `T: Pod`
    // accepts any bit pattern; copy_to is byte-wise and honours the
    // destination's alignment. set_len is valid because exactly `n`
    // elements were written.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * sz);
        out.set_len(n);
    }
    out
}

/// A typed view over a received byte buffer.
///
/// When the underlying buffer happens to be properly aligned for `T`
/// (the common case: allocators return ≥ 8-byte aligned memory and the
/// blob writer pads sections to 8 bytes) the view is zero-copy;
/// otherwise the data is materialized once on construction.
pub struct PodArray<T: Pod> {
    /// Keeps the zero-copy backing alive; unused in the copied case.
    _backing: Option<Bytes>,
    copied: Option<Vec<T>>,
    ptr: *const T,
    len: usize,
}

// SAFETY: PodArray owns (or co-owns, via Bytes) the pointed-to memory
// and exposes it read-only; T: Pod is Send.
unsafe impl<T: Pod> Send for PodArray<T> {}
unsafe impl<T: Pod> Sync for PodArray<T> {}

impl<T: Pod> PodArray<T> {
    /// Wraps `bytes` as a typed array, copying only if misaligned.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of `size_of::<T>()`.
    pub fn new(bytes: Bytes) -> Self {
        let sz = std::mem::size_of::<T>();
        assert!(
            sz > 0 && bytes.len() % sz == 0,
            "byte length {} is not a multiple of element size {}",
            bytes.len(),
            sz
        );
        let len = bytes.len() / sz;
        if bytes.as_ptr().align_offset(std::mem::align_of::<T>()) == 0 {
            let ptr = bytes.as_ptr().cast::<T>();
            Self { _backing: Some(bytes), copied: None, ptr, len }
        } else {
            let copied = vec_from_bytes::<T>(&bytes);
            let ptr = copied.as_ptr();
            Self { _backing: None, copied: Some(copied), ptr, len }
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe either the aligned Bytes buffer or
        // the owned copy, both alive as long as self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Converts into an owned vector (free if the data was already copied).
    pub fn into_vec(mut self) -> Vec<T> {
        match self.copied.take() {
            Some(v) => v,
            None => self.as_slice().to_vec(),
        }
    }
}

impl<T: Pod> std::ops::Deref for PodArray<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for PodArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_u32() {
        let v: Vec<u32> = vec![1, 2, 3, 0xdead_beef];
        let b = bytes_of(&v);
        assert_eq!(b.len(), 16);
        let back: Vec<u32> = vec_from_bytes(b);
        assert_eq!(back, v);
    }

    #[test]
    fn bytes_roundtrip_u64() {
        let v: Vec<u64> = vec![u64::MAX, 0, 42];
        assert_eq!(vec_from_bytes::<u64>(bytes_of(&v)), v);
    }

    #[test]
    fn bytes_roundtrip_f64() {
        let v: Vec<f64> = vec![1.5, -0.25, f64::INFINITY];
        assert_eq!(vec_from_bytes::<f64>(bytes_of(&v)), v);
    }

    #[test]
    fn empty_roundtrip() {
        let v: Vec<u32> = Vec::new();
        assert!(vec_from_bytes::<u32>(bytes_of(&v)).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let b = [1u8, 2, 3];
        let _ = vec_from_bytes::<u32>(&b);
    }

    #[test]
    fn pod_array_aligned_is_zero_copy() {
        let v: Vec<u64> = (0..100).collect();
        let bytes = Bytes::from(bytes_of(&v).to_vec());
        let arr = PodArray::<u64>::new(bytes);
        assert_eq!(arr.as_slice(), v.as_slice());
        assert_eq!(arr.len(), 100);
    }

    #[test]
    fn pod_array_misaligned_copies() {
        let v: Vec<u32> = (0..16).collect();
        let mut raw = vec![0u8];
        raw.extend_from_slice(bytes_of(&v));
        let bytes = Bytes::from(raw).slice(1..);
        let arr = PodArray::<u32>::new(bytes);
        assert_eq!(arr.as_slice(), v.as_slice());
    }

    #[test]
    fn pod_array_into_vec() {
        let v: Vec<u32> = vec![9, 8, 7];
        let arr = PodArray::<u32>::new(Bytes::from(bytes_of(&v).to_vec()));
        assert_eq!(arr.into_vec(), v);
    }

    #[test]
    fn array_pod_roundtrip() {
        let v: Vec<[u32; 2]> = vec![[1, 2], [3, 4]];
        assert_eq!(vec_from_bytes::<[u32; 2]>(bytes_of(&v)), v);
    }
}
