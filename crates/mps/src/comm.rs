//! Point-to-point communication between ranks.
//!
//! Every pair of ranks is connected by an unbounded lock-free channel,
//! so sends never block (the MPI analogue is buffered/eager mode; the
//! algorithms in this workspace only ever exchange messages that both
//! sides expect, so no rendezvous protocol is needed). Receives block
//! until a message with the requested `(source, tag)` arrives;
//! out-of-order messages are parked in a per-source pending queue so
//! tag matching is exact.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};

use crate::pod::{bytes_of, Pod, PodArray};
use crate::stats::{CommStats, StatCells, Timings};

/// Highest bit reserved for internal (collective) traffic; user tags
/// must stay below this.
pub const MAX_USER_TAG: u64 = 1 << 48;

/// A single in-flight message.
#[derive(Debug)]
pub(crate) struct Packet {
    pub tag: u64,
    pub data: Bytes,
}

/// One rank's endpoint of the communicator.
///
/// A `Comm` is owned by exactly one thread (the rank it represents)
/// and is handed to the rank body by [`crate::Universe::run`].
pub struct Comm {
    rank: usize,
    size: usize,
    /// senders[d] sends to rank d.
    senders: Vec<Sender<Packet>>,
    /// receivers[s] receives from rank s.
    receivers: Vec<Receiver<Packet>>,
    /// Messages received from `s` whose tag didn't match a recv call.
    pending: Vec<RefCell<VecDeque<Packet>>>,
    /// Monotone sequence number shared by all collective calls; every
    /// rank executes collectives in the same order, so equal sequence
    /// numbers identify the same logical operation.
    pub(crate) coll_seq: std::cell::Cell<u64>,
    pub(crate) stats: StatCells,
    /// Named phase timers for user code.
    pub timings: Timings,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Packet>>,
        receivers: Vec<Receiver<Packet>>,
    ) -> Self {
        let pending = (0..size).map(|_| RefCell::new(VecDeque::new())).collect();
        Self {
            rank,
            size,
            senders,
            receivers,
            pending,
            coll_seq: std::cell::Cell::new(0),
            stats: StatCells::default(),
            timings: Timings::new(),
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of the communication counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }

    fn debug_assert_user_tag(tag: u64) {
        debug_assert!(tag < MAX_USER_TAG, "user tag {tag:#x} collides with reserved space");
    }

    /// Sends a pre-assembled byte buffer to `dst`. Never blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the destination rank has
    /// already terminated.
    pub fn send_bytes(&self, dst: usize, tag: u64, data: Bytes) {
        Self::debug_assert_user_tag(tag);
        self.send_internal(dst, tag, data);
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: u64, data: Bytes) {
        assert!(dst < self.size, "send to rank {dst} but universe has {} ranks", self.size);
        let t0 = Instant::now();
        let nbytes = data.len() as u64;
        self.senders[dst]
            .send(Packet { tag, data })
            .unwrap_or_else(|_| panic!("rank {} send to terminated rank {dst}", self.rank));
        self.stats.bytes_sent.set(self.stats.bytes_sent.get() + nbytes);
        self.stats.msgs_sent.set(self.stats.msgs_sent.get() + 1);
        self.stats.send_ns.set(self.stats.send_ns.get() + t0.elapsed().as_nanos() as u64);
    }

    /// Sends a typed slice to `dst` (copies it into the message buffer).
    pub fn send<T: Pod>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_bytes(dst, tag, Bytes::from(bytes_of(data).to_vec()));
    }

    /// Sends a single value to `dst`.
    pub fn send_val<T: Pod>(&self, dst: usize, tag: u64, value: T) {
        self.send(dst, tag, std::slice::from_ref(&value));
    }

    /// Receives the next message from `src` carrying `tag`. Blocks.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range, or if `src` terminates without
    /// having sent a matching message (guaranteed deadlock otherwise).
    pub fn recv_bytes(&self, src: usize, tag: u64) -> Bytes {
        Self::debug_assert_user_tag(tag);
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&self, src: usize, tag: u64) -> Bytes {
        assert!(src < self.size, "recv from rank {src} but universe has {} ranks", self.size);
        let t0 = Instant::now();

        // First drain anything already parked for this source.
        let mut pending = self.pending[src].borrow_mut();
        if let Some(pos) = pending.iter().position(|p| p.tag == tag) {
            let pkt = pending.remove(pos).expect("position just found");
            self.note_recv(&pkt, t0);
            return pkt.data;
        }

        loop {
            let pkt = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: peer rank {src} terminated before sending tag {tag:#x}",
                    self.rank
                )
            });
            if pkt.tag == tag {
                self.note_recv(&pkt, t0);
                return pkt.data;
            }
            pending.push_back(pkt);
        }
    }

    fn note_recv(&self, pkt: &Packet, t0: Instant) {
        self.stats.bytes_recv.set(self.stats.bytes_recv.get() + pkt.data.len() as u64);
        self.stats.msgs_recv.set(self.stats.msgs_recv.get() + 1);
        self.stats.recv_ns.set(self.stats.recv_ns.get() + t0.elapsed().as_nanos() as u64);
    }

    /// Receives a typed array from `src`.
    pub fn recv<T: Pod>(&self, src: usize, tag: u64) -> PodArray<T> {
        PodArray::new(self.recv_bytes(src, tag))
    }

    /// Receives a single value from `src`.
    ///
    /// # Panics
    ///
    /// Panics if the arriving message does not contain exactly one `T`.
    pub fn recv_val<T: Pod>(&self, src: usize, tag: u64) -> T {
        let arr = self.recv::<T>(src, tag);
        assert_eq!(arr.len(), 1, "recv_val expected exactly one element, got {}", arr.len());
        arr.as_slice()[0]
    }

    /// Combined send + receive, the safe way to exchange with a peer
    /// (never deadlocks because sends are buffered).
    pub fn sendrecv_bytes(
        &self,
        dst: usize,
        send_tag: u64,
        data: Bytes,
        src: usize,
        recv_tag: u64,
    ) -> Bytes {
        self.send_bytes(dst, send_tag, data);
        self.recv_bytes(src, recv_tag)
    }

    /// Typed [`Comm::sendrecv_bytes`].
    pub fn sendrecv<T: Pod>(
        &self,
        dst: usize,
        send_tag: u64,
        data: &[T],
        src: usize,
        recv_tag: u64,
    ) -> PodArray<T> {
        self.send(dst, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Allocates a fresh block of internal tags for a collective call.
    pub(crate) fn next_coll_tag(&self, op: u64) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        // Layout: [63] internal flag | [62:56] op | [55:0] sequence.
        (1 << 63) | (op << 56) | seq
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}
