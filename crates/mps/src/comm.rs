//! Point-to-point communication between ranks.
//!
//! Sends never block: they enqueue the message in the destination's
//! mailbox (the MPI analogue is buffered/eager mode; the algorithms in
//! this workspace only ever exchange messages that both sides expect,
//! so no rendezvous protocol is needed). Receives block until a
//! message with the requested `(source, tag)` arrives; out-of-order
//! messages are parked in a per-source pending queue so tag matching
//! is exact.
//!
//! Receives cannot hang the process: if a peer panics the receive
//! returns [`MpsError::PeerFailed`]; if no matching message arrives
//! within the universe's deadline it returns [`MpsError::Timeout`]
//! together with a dump of what every rank was doing; and a collective
//! packet crossing a *different* collective at the same program point
//! returns [`MpsError::CollectiveMismatch`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use crate::chaos;
use crate::error::{MpsError, MpsResult};
use crate::fabric::{AwaitOutcome, BlockedOp, Fabric, Packet, Recovery};
use crate::pod::{bytes_of, Pod, PodArray};
use crate::reliable::{RxState, TRANSPORT_NOTHING_TAG, TRANSPORT_TAG};
use crate::stats::{CommStats, ReliabilityStats, Timings};

/// Highest bit reserved for internal (collective) traffic; user tags
/// must stay below this.
pub const MAX_USER_TAG: u64 = 1 << 48;

/// Internal-tag layout: `[63]` internal flag, `[62:56]` collective op,
/// `[55:40]` round, `[39:0]` sequence number.
pub(crate) const COLL_SEQ_MASK: u64 = (1 << 40) - 1;
const COLL_OP_SHIFT: u32 = 56;
const COLL_OP_MASK: u64 = 0x7f;

/// Human name of the collective op encoded in an internal tag.
pub(crate) fn coll_op_name(tag: u64) -> &'static str {
    match (tag >> COLL_OP_SHIFT) & COLL_OP_MASK {
        1 => "barrier",
        2 => "bcast",
        3 => "reduce",
        4 => "scan",
        5 => "gatherv",
        6 => "alltoallv",
        7 => "allgatherv",
        8 => "scatterv",
        _ => "collective",
    }
}

/// Blocked-op label for a tag: the collective name for internal tags,
/// a generic label for user traffic.
fn op_label(tag: u64) -> &'static str {
    if tag & (1 << 63) != 0 {
        coll_op_name(tag)
    } else {
        "recv"
    }
}

/// Describes an internal tag for mismatch reports.
fn describe_coll(tag: u64) -> String {
    format!("{} (seq {})", coll_op_name(tag), tag & COLL_SEQ_MASK)
}

/// One rank's endpoint of the communicator.
///
/// A `Comm` is owned by exactly one thread (the rank it represents)
/// and is handed to the rank body by [`crate::Universe::run`].
pub struct Comm {
    rank: usize,
    size: usize,
    fabric: Arc<dyn Fabric>,
    /// Messages received from `s` whose tag didn't match a recv call.
    pending: Vec<RefCell<VecDeque<Packet>>>,
    /// Reliable-delivery receive state (sequence tracking, reorder
    /// buffers, recovery timers); `None` unless the universe has a
    /// [`crate::FaultPlan`], so the chaos-off path allocates nothing.
    rx: Option<RefCell<RxState>>,
    /// Monotone sequence number shared by all collective calls; every
    /// rank executes collectives in the same order, so equal sequence
    /// numbers identify the same logical operation.
    pub(crate) coll_seq: std::cell::Cell<u64>,
    /// Named phase timers for user code.
    pub timings: Timings,
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, fabric: Arc<dyn Fabric>) -> Self {
        debug_assert_eq!(size, fabric.size(), "communicator and fabric disagree on universe size");
        let pending = (0..size).map(|_| RefCell::new(VecDeque::new())).collect();
        let rx = fabric.transport().map(|_| RefCell::new(RxState::new(size)));
        Self {
            rank,
            size,
            fabric,
            pending,
            rx,
            coll_seq: std::cell::Cell::new(0),
            timings: Timings::new(),
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Which fabric backend carries this communicator's traffic:
    /// `"local"` (threads in one process) or `"socket"` (one process
    /// per rank over Unix-domain/TCP sockets).
    pub fn backend(&self) -> &'static str {
        self.fabric.backend()
    }

    /// Snapshot of the communication counters so far.
    pub fn stats(&self) -> CommStats {
        self.fabric.shared_stats(self.rank).snapshot()
    }

    /// Snapshot of this rank's reliable-delivery counters, or `None`
    /// when no [`crate::FaultPlan`] is installed (the transport — and
    /// therefore every counter — does not exist on the chaos-off path).
    pub fn reliability_stats(&self) -> Option<ReliabilityStats> {
        self.fabric.transport().map(|t| t.stats(self.rank))
    }

    /// Number of collective operations this rank has entered so far.
    pub fn collective_calls(&self) -> u64 {
        self.coll_seq.get()
    }

    fn debug_assert_user_tag(tag: u64) {
        debug_assert!(tag < MAX_USER_TAG, "user tag {tag:#x} collides with reserved space");
    }

    /// Sends a pre-assembled byte buffer to `dst`. Never blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send_bytes(&self, dst: usize, tag: u64, data: Bytes) {
        Self::debug_assert_user_tag(tag);
        self.send_internal(dst, tag, data);
    }

    pub(crate) fn send_internal(&self, dst: usize, tag: u64, data: Bytes) {
        assert!(dst < self.size, "send to rank {dst} but universe has {} ranks", self.size);
        let t0 = Instant::now();
        let nbytes = data.len() as u64;
        // Collective-internal traffic is summarized by the collective's
        // own span; only user sends get their own event.
        if tag & (1 << 63) == 0 {
            tc_trace::instant_with(tc_trace::names::SEND, tc_trace::Category::Comm, || {
                vec![("dst", dst.into()), ("tag", tag.into()), ("bytes", nbytes.into())]
            });
        }
        // The backend decides how the payload travels: the in-process
        // fabric is a mailbox push (framed only under chaos), the
        // socket fabric always frames onto the wire.
        self.fabric.send(self.rank, dst, tag, data);
        let st = self.fabric.shared_stats(self.rank);
        st.bytes_sent.fetch_add(nbytes, std::sync::atomic::Ordering::Relaxed);
        st.msgs_sent.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        st.send_ns.fetch_add(t0.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
    }

    /// Sends a typed slice to `dst` (copies it into the message buffer).
    pub fn send<T: Pod>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_bytes(dst, tag, Bytes::from(bytes_of(data).to_vec()));
    }

    /// Sends a single value to `dst`.
    pub fn send_val<T: Pod>(&self, dst: usize, tag: u64, value: T) {
        self.send(dst, tag, std::slice::from_ref(&value));
    }

    /// Receives the next message from `src` carrying `tag`.
    ///
    /// Blocks until the message arrives, but never forever: see the
    /// module docs for the failure modes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn recv_bytes(&self, src: usize, tag: u64) -> MpsResult<Bytes> {
        Self::debug_assert_user_tag(tag);
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&self, src: usize, tag: u64) -> MpsResult<Bytes> {
        self.recv_labeled(src, tag, op_label(tag))
    }

    /// The blocking matching loop behind both [`Comm::recv_bytes`] and
    /// [`RecvRequest::wait`]; `op` names the operation in blocked-state
    /// dumps and timeout errors.
    fn recv_labeled(&self, src: usize, tag: u64, op: &'static str) -> MpsResult<Bytes> {
        assert!(src < self.size, "recv from rank {src} but universe has {} ranks", self.size);
        if chaos::chaos_possible() && self.rx.is_some() {
            return self.recv_reliable(src, tag, op);
        }
        let t0 = Instant::now();
        // User receives get a span (wall − CPU inside it is the
        // blocked time); collective-internal receives are covered by
        // the collective's own span instead, so blocked time is never
        // attributed twice.
        let mut tspan = (tag & (1 << 63) == 0).then(|| {
            tc_trace::span(tc_trace::names::RECV, tc_trace::Category::Comm)
                .arg("src", src)
                .arg("tag", tag)
        });

        // First drain anything already parked for this source.
        {
            let mut pending = self.pending[src].borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.tag == tag) {
                let pkt = pending.remove(pos).expect("position just found");
                self.note_recv(&pkt, t0);
                if let Some(s) = &mut tspan {
                    s.record_arg("bytes", pkt.data.len());
                }
                return Ok(pkt.data);
            }
            if let Some(err) = self.detect_mismatch(src, tag, pending.iter()) {
                return Err(err);
            }
        }

        self.fabric.set_blocked(self.rank, Some(BlockedOp { src, tag, op, since: t0 }));
        let outcome = self.fabric.await_match(self.rank, src, &mut |queue| {
            // Drain the mailbox into the per-source pending queues,
            // stopping if the wanted packet shows up.
            while let Some(pkt) = queue.pop_front() {
                if pkt.src == src && pkt.tag == tag {
                    return Some(Ok(pkt));
                }
                if pkt.src == src {
                    if let Some(err) = self.detect_mismatch(src, tag, std::iter::once(&pkt)) {
                        return Some(Err(err));
                    }
                }
                self.pending[pkt.src].borrow_mut().push_back(pkt);
            }
            None
        });
        self.fabric.set_blocked(self.rank, None);

        match outcome {
            AwaitOutcome::Matched(Ok(pkt)) => {
                self.note_recv(&pkt, t0);
                if let Some(s) = &mut tspan {
                    s.record_arg("bytes", pkt.data.len());
                }
                Ok(pkt.data)
            }
            AwaitOutcome::Matched(Err(err)) => Err(err),
            // A recoverable connection loss stays typed PeerDown all
            // the way out, so session loops can tell "rejoin at the
            // next epoch" apart from a genuine peer failure.
            AwaitOutcome::Failed(fail) => Err(match fail.error {
                MpsError::PeerDown { rank } => MpsError::PeerDown { rank },
                _ => MpsError::PeerFailed { rank: fail.rank, msg: fail.brief() },
            }),
            AwaitOutcome::SourceFinished => Err(MpsError::PeerFailed {
                rank: src,
                msg: format!("terminated before sending tag {tag:#x}"),
            }),
            AwaitOutcome::TimedOut => Err(MpsError::Timeout {
                rank: self.rank,
                src,
                op,
                tag,
                waited: t0.elapsed(),
                report: self.fabric.dump(),
            }),
            AwaitOutcome::SliceExpired => {
                unreachable!("no slice deadline on the chaos-off receive path")
            }
        }
    }

    /// [`Comm::recv_labeled`] over a chaotic fabric: the same matching
    /// contract, but packets arrive as transport frames (checksummed,
    /// sequenced) and the wait is sliced so the receiver can drive
    /// NACK/retransmit recovery between waits. Adds one failure mode
    /// to the un-hangable set: [`MpsError::DeliveryFailed`] when a
    /// link's retransmit budget is exhausted.
    fn recv_reliable(&self, src: usize, tag: u64, op: &'static str) -> MpsResult<Bytes> {
        let t0 = Instant::now();
        let mut tspan = (tag & (1 << 63) == 0).then(|| {
            tc_trace::span(tc_trace::names::RECV, tc_trace::Category::Comm)
                .arg("src", src)
                .arg("tag", tag)
        });

        // First drain anything already released and parked for this
        // source (frames are decoded at ingest, so `pending` holds
        // ordinary application packets here too).
        {
            let mut pending = self.pending[src].borrow_mut();
            if let Some(pos) = pending.iter().position(|p| p.tag == tag) {
                let pkt = pending.remove(pos).expect("position just found");
                self.note_recv(&pkt, t0);
                if let Some(s) = &mut tspan {
                    s.record_arg("bytes", pkt.data.len());
                }
                return Ok(pkt.data);
            }
            if let Some(err) = self.detect_mismatch(src, tag, pending.iter()) {
                return Err(err);
            }
        }

        self.fabric.set_blocked(self.rank, Some(BlockedOp { src, tag, op, since: t0 }));
        let deadline = t0 + self.fabric.timeout();
        let result = loop {
            let slice = self.arm_recovery(src);
            let outcome = self.fabric.await_match_until(
                self.rank,
                src,
                deadline,
                Some(slice),
                &mut |queue| self.match_reliable(queue, src, tag),
            );
            match outcome {
                AwaitOutcome::Matched(Ok(pkt)) => {
                    self.note_recv(&pkt, t0);
                    if let Some(s) = &mut tspan {
                        s.record_arg("bytes", pkt.data.len());
                    }
                    break Ok(pkt.data);
                }
                AwaitOutcome::Matched(Err(err)) => break Err(err),
                AwaitOutcome::Failed(fail) => {
                    break Err(match fail.error {
                        MpsError::PeerDown { rank } => MpsError::PeerDown { rank },
                        _ => MpsError::PeerFailed { rank: fail.rank, msg: fail.brief() },
                    })
                }
                AwaitOutcome::SourceFinished => {
                    // The sender is gone, but its unacked frames are
                    // still in the shared retransmit window — recover
                    // them without its cooperation. Only when nothing
                    // is left to recover is the message truly
                    // impossible.
                    match self.drive_recovery(src, true) {
                        Ok(0) => {
                            break Err(MpsError::PeerFailed {
                                rank: src,
                                msg: format!("terminated before sending tag {tag:#x}"),
                            })
                        }
                        Ok(_) => continue,
                        Err(e) => break Err(e),
                    }
                }
                AwaitOutcome::TimedOut => {
                    break Err(MpsError::Timeout {
                        rank: self.rank,
                        src,
                        op,
                        tag,
                        waited: t0.elapsed(),
                        report: self.fabric.dump(),
                    })
                }
                AwaitOutcome::SliceExpired => {
                    if let Err(e) = self.drive_recovery(src, false) {
                        break Err(e);
                    }
                }
            }
        };
        self.fabric.set_blocked(self.rank, None);
        result
    }

    /// Mailbox matcher of the reliable path: transport frames are
    /// ingested (verified, deduplicated, re-ordered); every released
    /// application packet then flows through the ordinary matching
    /// rules — match, mismatch-detect, or park.
    fn match_reliable(
        &self,
        queue: &mut VecDeque<Packet>,
        src: usize,
        tag: u64,
    ) -> Option<MpsResult<Packet>> {
        let transport = self.fabric.transport().expect("reliable matcher requires a transport");
        let mut rx = self.rx.as_ref().expect("reliable matcher requires rx state").borrow_mut();
        let mut found: Option<MpsResult<Packet>> = None;
        let mut released: Vec<Packet> = Vec::new();
        while found.is_none() {
            let Some(pkt) = queue.pop_front() else { break };
            released.clear();
            if pkt.tag == TRANSPORT_TAG {
                let (psrc, rank) = (pkt.src, self.rank);
                rx.ingest(
                    transport,
                    rank,
                    psrc,
                    &pkt.data,
                    &mut released,
                    // Progress publication goes through the fabric: a
                    // shared-memory store in-process, an ACK message on
                    // the wire for a remote sender.
                    &mut |next_seq| self.fabric.publish_ack(psrc, rank, next_seq),
                );
            } else if pkt.tag == TRANSPORT_NOTHING_TAG {
                // A remote sender answered a NACK with "nothing at or
                // above that sequence": if the link still looks exactly
                // like it did when we asked (same expected seq, no gap
                // evidence), treat it like the in-process zero-resend
                // case — reset the budget and re-arm patience.
                if pkt.data.len() == 8 {
                    let from_seq = u64::from_le_bytes(pkt.data.as_slice().try_into().unwrap());
                    let link = rx.link(pkt.src);
                    if link.next_seq == from_seq && !link.has_gap_evidence() {
                        link.note_nothing_to_recover(Instant::now() + transport.plan().nack_base());
                    }
                }
            } else {
                released.push(pkt);
            }
            for lp in released.drain(..) {
                if found.is_none() && lp.src == src && lp.tag == tag {
                    found = Some(Ok(lp));
                    continue;
                }
                if found.is_none() && lp.src == src {
                    if let Some(err) = self.detect_mismatch(src, tag, std::iter::once(&lp)) {
                        found = Some(Err(err));
                        continue;
                    }
                }
                self.pending[lp.src].borrow_mut().push_back(lp);
            }
        }
        found
    }

    /// Makes sure the link we are blocked on has a recovery timer and
    /// returns the earliest timer over all inbound links — the slice
    /// deadline of the next wait.
    fn arm_recovery(&self, blocked_src: usize) -> Instant {
        let transport = self.fabric.transport().expect("recovery requires a transport");
        let mut rx = self.rx.as_ref().expect("recovery requires rx state").borrow_mut();
        let now = Instant::now();
        let mut earliest =
            *rx.link(blocked_src).nack_at.get_or_insert(now + transport.plan().nack_base());
        for (_, link) in rx.links() {
            if let Some(t) = link.nack_at {
                earliest = earliest.min(t);
            }
        }
        earliest
    }

    /// Runs one recovery round over every link whose timer is due
    /// (`force` makes `blocked_src` due unconditionally — used when
    /// its sender has terminated). Each round re-requests everything
    /// from the link's next expected sequence number; a round that
    /// finds nothing to resend *and* no evidence of a gap is patience,
    /// not a retry, and does not consume budget. Returns the number of
    /// frames recovered for `blocked_src`, or
    /// [`MpsError::DeliveryFailed`] once a link exhausts its budget.
    fn drive_recovery(&self, blocked_src: usize, force: bool) -> MpsResult<usize> {
        let transport = self.fabric.transport().expect("recovery requires a transport");
        let mut rx = self.rx.as_ref().expect("recovery requires rx state").borrow_mut();
        let now = Instant::now();
        let mut recovered_for_blocked = 0;
        for (l, link) in rx.links() {
            let due = (force && l == blocked_src) || link.nack_at.is_some_and(|t| now >= t);
            if !due {
                continue;
            }
            if link.attempts >= transport.plan().max_retries() {
                return Err(MpsError::DeliveryFailed {
                    src: l,
                    dst: self.rank,
                    seq: link.next_seq,
                    attempts: link.attempts,
                });
            }
            let attempt = link.attempts + 1;
            let resent = match self.fabric.recover(l, self.rank, link.next_seq, attempt) {
                Recovery::Resent(0) => {
                    // The sender has not produced this frame yet (e.g.
                    // it is mid-compute): keep waiting without burning
                    // budget.
                    link.note_nothing_to_recover(now + transport.plan().nack_base());
                    0
                }
                Recovery::Resent(n) => n,
                // The request went on the wire; whether anything comes
                // back is unknown yet, so count it as pending progress
                // (a nothing-to-recover reply resets the budget).
                Recovery::Requested => 1,
            };
            if resent > 0 {
                link.attempts = attempt;
                transport.note_nack(self.rank);
                link.nack_at = Some(now + transport.plan().backoff(l, self.rank, attempt));
            }
            if l == blocked_src {
                recovered_for_blocked = resent;
            }
        }
        Ok(recovered_for_blocked)
    }

    /// Flags a packet from `src` that belongs to a *different*
    /// collective at the same sequence position as the awaited tag —
    /// i.e. the two ranks diverged in their collective call sequence.
    fn detect_mismatch<'p>(
        &self,
        src: usize,
        awaited: u64,
        pkts: impl Iterator<Item = &'p Packet>,
    ) -> Option<MpsError> {
        if awaited & (1 << 63) == 0 {
            return None;
        }
        for pkt in pkts {
            if pkt.tag & (1 << 63) != 0
                && pkt.tag != awaited
                && pkt.tag & COLL_SEQ_MASK == awaited & COLL_SEQ_MASK
            {
                return Some(MpsError::CollectiveMismatch {
                    rank: self.rank,
                    peer: src,
                    expected: describe_coll(awaited),
                    got: describe_coll(pkt.tag),
                });
            }
        }
        None
    }

    fn note_recv(&self, pkt: &Packet, t0: Instant) {
        let st = self.fabric.shared_stats(self.rank);
        st.bytes_recv.fetch_add(pkt.data.len() as u64, std::sync::atomic::Ordering::Relaxed);
        st.msgs_recv.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        st.recv_ns.fetch_add(t0.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
    }

    /// Receives a typed array from `src`.
    pub fn recv<T: Pod>(&self, src: usize, tag: u64) -> MpsResult<PodArray<T>> {
        Ok(PodArray::new(self.recv_bytes(src, tag)?))
    }

    /// Receives a single value from `src`.
    ///
    /// # Panics
    ///
    /// Panics if the arriving message does not contain exactly one `T`.
    pub fn recv_val<T: Pod>(&self, src: usize, tag: u64) -> MpsResult<T> {
        let arr = self.recv::<T>(src, tag)?;
        assert_eq!(arr.len(), 1, "recv_val expected exactly one element, got {}", arr.len());
        Ok(arr.as_slice()[0])
    }

    /// Nonblocking send: enqueues `data` for `dst` and returns a
    /// request handle.
    ///
    /// Sends are buffered (they complete at post time), so the handle
    /// exists for API symmetry with [`Comm::irecv_bytes`]; its
    /// [`SendRequest::wait`] never fails.
    pub fn isend_bytes(&self, dst: usize, tag: u64, data: Bytes) -> SendRequest {
        self.send_bytes(dst, tag, data);
        SendRequest { _completed: () }
    }

    /// Posts a nonblocking receive for the next message from `src`
    /// carrying `tag` and returns the in-flight request.
    ///
    /// The actual matching happens in [`RecvRequest::wait`]; until then
    /// the message (if already delivered) stays parked in the mailbox.
    /// The deadline clock (`MPS_RECV_TIMEOUT_MS`) starts at the wait,
    /// not at the post — a long compute phase between post and wait is
    /// not a hang. Dropping the request without waiting leaves any
    /// matching packet parked; with unique tags that is harmless.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn irecv_bytes(&self, src: usize, tag: u64) -> RecvRequest<'_> {
        Self::debug_assert_user_tag(tag);
        assert!(src < self.size, "irecv from rank {src} but universe has {} ranks", self.size);
        RecvRequest { comm: self, src, tag }
    }

    /// Combined send + receive, the safe way to exchange with a peer
    /// (never deadlocks because sends are buffered).
    pub fn sendrecv_bytes(
        &self,
        dst: usize,
        send_tag: u64,
        data: Bytes,
        src: usize,
        recv_tag: u64,
    ) -> MpsResult<Bytes> {
        self.send_bytes(dst, send_tag, data);
        self.recv_bytes(src, recv_tag)
    }

    /// Typed [`Comm::sendrecv_bytes`].
    pub fn sendrecv<T: Pod>(
        &self,
        dst: usize,
        send_tag: u64,
        data: &[T],
        src: usize,
        recv_tag: u64,
    ) -> MpsResult<PodArray<T>> {
        self.send(dst, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Allocates a fresh block of internal tags for a collective call.
    pub(crate) fn next_coll_tag(&self, op: u64) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        // Layout: [63] internal flag | [62:56] op | [55:0] sequence.
        (1 << 63) | (op << COLL_OP_SHIFT) | seq
    }

    /// Span covering one collective call, named after the op encoded
    /// in `tag` and stamped with the collective sequence number, so a
    /// trace shows which logical collective every rank was inside.
    pub(crate) fn coll_span(&self, tag: u64) -> tc_trace::Span {
        tc_trace::span(coll_op_name(tag), tc_trace::Category::Collective)
            .arg("seq", tag & COLL_SEQ_MASK)
    }
}

/// Handle of a posted nonblocking send.
///
/// Sends complete at post time (buffered mode), so this is evidence
/// that the send happened; [`SendRequest::wait`] is a no-op kept for
/// symmetry with MPI's request model.
#[must_use = "a send request should be waited (or explicitly discarded)"]
#[derive(Debug)]
pub struct SendRequest {
    _completed: (),
}

impl SendRequest {
    /// Completes the send. Never fails: the payload was buffered into
    /// the destination mailbox when the request was posted.
    pub fn wait(self) -> MpsResult<()> {
        Ok(())
    }
}

/// An in-flight nonblocking receive posted by [`Comm::irecv_bytes`].
///
/// The request carries the full un-hangable machinery of a blocking
/// receive, deferred to [`RecvRequest::wait`]: the deadline, the
/// first-failure slot, collective-mismatch detection, and registration
/// in the per-rank blocked-state dump (as op `"irecv"`).
#[must_use = "an irecv does nothing until waited"]
#[derive(Debug)]
pub struct RecvRequest<'a> {
    comm: &'a Comm,
    src: usize,
    tag: u64,
}

impl RecvRequest<'_> {
    /// The source rank this request is matching against.
    pub fn src(&self) -> usize {
        self.src
    }

    /// The tag this request is matching against.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Blocks until the matching message arrives and returns its
    /// payload, with the same failure modes as [`Comm::recv_bytes`].
    pub fn wait(self) -> MpsResult<Bytes> {
        self.comm.recv_labeled(self.src, self.tag, "irecv")
    }
}

/// Waits on a batch of receive requests, returning their payloads in
/// request order. The first failure aborts the batch (remaining
/// requests are dropped; their packets stay parked, which is harmless
/// under the unique-tag discipline all callers here follow).
pub fn waitall<'a>(reqs: impl IntoIterator<Item = RecvRequest<'a>>) -> MpsResult<Vec<Bytes>> {
    reqs.into_iter().map(RecvRequest::wait).collect()
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}
