//! Square process grids and Cannon-style shifts.
//!
//! The paper arranges `p` ranks as a `√p × √p` grid; the 2D task
//! decomposition lives on this grid and the triangle-counting loop
//! moves operand blocks *left along rows* (`U` blocks) and *up along
//! columns* (`L` blocks), exactly like Cannon's matrix-multiply
//! schedule (paper §3.2, §5.1).

use bytes::Bytes;

use crate::comm::{Comm, RecvRequest};
use crate::error::MpsResult;
use crate::pod::{Pod, PodArray};

/// Reserved user-tag region for grid shifts (kept below
/// [`crate::comm::MAX_USER_TAG`]).
const GRID_TAG_BASE: u64 = (1 << 47) + 0x47;

/// A rank's coordinates on a `q × q` grid.
///
/// Rank `r` sits at row `r ÷ q`, column `r % q` (row-major).
#[derive(Debug)]
pub struct Grid<'a> {
    comm: &'a Comm,
    q: usize,
    row: usize,
    col: usize,
    /// Sequence number distinguishing successive shift operations.
    shift_seq: std::cell::Cell<u64>,
}

impl<'a> Grid<'a> {
    /// Builds the grid view for this rank.
    ///
    /// # Panics
    ///
    /// Panics if the universe size is not a perfect square.
    pub fn new(comm: &'a Comm) -> Self {
        let p = comm.size();
        let q = (p as f64).sqrt().round() as usize;
        assert_eq!(q * q, p, "grid requires a perfect-square rank count, got {p}");
        Self { comm, q, row: comm.rank() / q, col: comm.rank() % q, shift_seq: 0.into() }
    }

    /// Side length `√p` of the grid.
    pub fn q(&self) -> usize {
        self.q
    }

    /// This rank's grid row.
    pub fn row(&self) -> usize {
        self.row
    }

    /// This rank's grid column.
    pub fn col(&self) -> usize {
        self.col
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        self.comm
    }

    /// Rank id of the processor at `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.q && col < self.q);
        row * self.q + col
    }

    fn next_tag(&self) -> u64 {
        let s = self.shift_seq.get();
        self.shift_seq.set(s + 1);
        GRID_TAG_BASE + (s << 8)
    }

    /// Sends `data` to the left neighbour (same row, col−1, wrapping)
    /// and returns the buffer arriving from the right neighbour.
    ///
    /// This is the `U`-block movement of the paper's shift step.
    pub fn shift_left(&self, data: Bytes) -> MpsResult<Bytes> {
        let tag = self.next_tag();
        let dst = self.rank_of(self.row, (self.col + self.q - 1) % self.q);
        let src = self.rank_of(self.row, (self.col + 1) % self.q);
        self.comm.sendrecv_bytes(dst, tag, data, src, tag)
    }

    /// Sends `data` to the upper neighbour (row−1, same col, wrapping)
    /// and returns the buffer arriving from below.
    ///
    /// This is the `L`-block movement of the paper's shift step.
    pub fn shift_up(&self, data: Bytes) -> MpsResult<Bytes> {
        let tag = self.next_tag();
        let dst = self.rank_of((self.row + self.q - 1) % self.q, self.col);
        let src = self.rank_of((self.row + 1) % self.q, self.col);
        self.comm.sendrecv_bytes(dst, tag, data, src, tag)
    }

    /// Nonblocking [`Grid::shift_left`]: eagerly sends `data` left and
    /// posts the receive from the right neighbour, returning its
    /// request. Waiting the request completes the shift, so compute
    /// can run between post and wait.
    pub fn shift_left_start(&self, data: Bytes) -> RecvRequest<'a> {
        let tag = self.next_tag();
        let dst = self.rank_of(self.row, (self.col + self.q - 1) % self.q);
        let src = self.rank_of(self.row, (self.col + 1) % self.q);
        let _ = self.comm.isend_bytes(dst, tag, data);
        self.comm.irecv_bytes(src, tag)
    }

    /// Nonblocking [`Grid::shift_up`]: eagerly sends `data` up and
    /// posts the receive from the neighbour below, returning its
    /// request.
    pub fn shift_up_start(&self, data: Bytes) -> RecvRequest<'a> {
        let tag = self.next_tag();
        let dst = self.rank_of((self.row + self.q - 1) % self.q, self.col);
        let src = self.rank_of((self.row + 1) % self.q, self.col);
        let _ = self.comm.isend_bytes(dst, tag, data);
        self.comm.irecv_bytes(src, tag)
    }

    /// Byte-level exchange with arbitrary grid peers (used by the
    /// initial Cannon skew, where offsets depend on the coordinates).
    pub fn exchange_bytes(
        &self,
        dst_row: usize,
        dst_col: usize,
        data: Bytes,
        src_row: usize,
        src_col: usize,
    ) -> MpsResult<Bytes> {
        let tag = self.next_tag();
        self.comm.sendrecv_bytes(
            self.rank_of(dst_row, dst_col),
            tag,
            data,
            self.rank_of(src_row, src_col),
            tag,
        )
    }

    /// Typed exchange with an arbitrary grid peer (used by the initial
    /// skew/alignment step).
    pub fn exchange<T: Pod>(
        &self,
        dst_row: usize,
        dst_col: usize,
        data: &[T],
        src_row: usize,
        src_col: usize,
    ) -> MpsResult<PodArray<T>> {
        let tag = self.next_tag();
        self.comm.sendrecv(
            self.rank_of(dst_row, dst_col),
            tag,
            data,
            self.rank_of(src_row, src_col),
            tag,
        )
    }
}

/// Returns `√p` if `p` is a perfect square, `None` otherwise.
pub fn perfect_square_side(p: usize) -> Option<usize> {
    let q = (p as f64).sqrt().round() as usize;
    (q * q == p).then_some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn perfect_square_side_detects() {
        assert_eq!(perfect_square_side(1), Some(1));
        assert_eq!(perfect_square_side(4), Some(2));
        assert_eq!(perfect_square_side(169), Some(13));
        assert_eq!(perfect_square_side(2), None);
        assert_eq!(perfect_square_side(168), None);
    }

    #[test]
    fn coordinates_are_row_major() {
        let out = Universe::run(9, |c| {
            let g = Grid::new(c);
            (g.row(), g.col(), g.q())
        });
        assert_eq!(out[0], (0, 0, 3));
        assert_eq!(out[5], (1, 2, 3));
        assert_eq!(out[8], (2, 2, 3));
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn non_square_universe_rejected() {
        Universe::run(6, |c| {
            let _ = Grid::new(c);
        });
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // r is the rank id under test
    fn shift_left_rotates_within_rows() {
        // Each rank contributes its rank id; after one left shift each
        // rank holds the id of its right neighbour (same row).
        let out = Universe::run(9, |c| {
            let g = Grid::new(c);
            let payload = Bytes::from(vec![c.rank() as u8]);
            let got = g.shift_left(payload).unwrap();
            got[0] as usize
        });
        for r in 0..9 {
            let (row, col) = (r / 3, r % 3);
            let right = row * 3 + (col + 1) % 3;
            assert_eq!(out[r], right, "rank {r}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // r is the rank id under test
    fn shift_up_rotates_within_columns() {
        let out = Universe::run(16, |c| {
            let g = Grid::new(c);
            let got = g.shift_up(Bytes::from(vec![c.rank() as u8])).unwrap();
            got[0] as usize
        });
        for r in 0..16 {
            let (row, col) = (r / 4, r % 4);
            let below = ((row + 1) % 4) * 4 + col;
            assert_eq!(out[r], below, "rank {r}");
        }
    }

    #[test]
    fn q_shifts_return_to_origin() {
        let out = Universe::run(25, |c| {
            let g = Grid::new(c);
            let mut buf = Bytes::from(vec![c.rank() as u8]);
            for _ in 0..g.q() {
                buf = g.shift_left(buf).unwrap();
            }
            buf[0] as usize
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v, r);
        }
    }

    #[test]
    fn shift_start_matches_blocking_shift() {
        // One nonblocking and one blocking shift per direction; the
        // nonblocking pair must deliver exactly what the blocking
        // calls would have.
        let out = Universe::run(9, |c| {
            let g = Grid::new(c);
            let left = g.shift_left_start(Bytes::from(vec![c.rank() as u8]));
            let up = g.shift_up_start(Bytes::from(vec![c.rank() as u8 + 100]));
            let l = left.wait().unwrap()[0] as usize;
            let u = up.wait().unwrap()[0] as usize - 100;
            (l, u)
        });
        for (r, (l, u)) in out.iter().enumerate() {
            let (row, col) = (r / 3, r % 3);
            assert_eq!(*l, row * 3 + (col + 1) % 3, "rank {r} left");
            assert_eq!(*u, ((row + 1) % 3) * 3 + col, "rank {r} up");
        }
    }

    #[test]
    fn overlapped_shifts_compose_over_full_rotation() {
        // Post shift z+1 before consuming shift z (the double-buffer
        // schedule); after q shifts every payload is back home.
        let out = Universe::run(16, |c| {
            let g = Grid::new(c);
            let mut buf = Bytes::from(vec![c.rank() as u8]);
            let mut pending = g.shift_left_start(buf.clone());
            for _ in 1..g.q() {
                buf = pending.wait().unwrap();
                pending = g.shift_left_start(buf.clone());
            }
            pending.wait().unwrap()[0] as usize
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v, r);
        }
    }

    #[test]
    fn waitall_collects_in_request_order() {
        let out = Universe::run(4, |c| {
            let g = Grid::new(c);
            let reqs = vec![
                g.shift_left_start(Bytes::from(vec![c.rank() as u8])),
                g.shift_up_start(Bytes::from(vec![c.rank() as u8 + 50])),
            ];
            let bufs = crate::comm::waitall(reqs).unwrap();
            (bufs[0][0] as usize, bufs[1][0] as usize - 50)
        });
        for (r, (l, u)) in out.iter().enumerate() {
            let (row, col) = (r / 2, r % 2);
            assert_eq!(*l, row * 2 + (col + 1) % 2);
            assert_eq!(*u, ((row + 1) % 2) * 2 + col);
        }
    }

    #[test]
    fn exchange_between_diagonal_peers() {
        let out = Universe::run(4, |c| {
            let g = Grid::new(c);
            // Everyone swaps with the transposed position.
            let (tr, tc) = (g.col(), g.row());
            let got = g.exchange::<u32>(tr, tc, &[c.rank() as u32], tr, tc).unwrap();
            got.as_slice()[0] as usize
        });
        assert_eq!(out, vec![0, 2, 1, 3]);
    }
}
