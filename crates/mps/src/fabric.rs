//! The communication-fabric abstraction shared by every backend.
//!
//! A [`Fabric`] is what one universe's ranks talk *through*: it owns
//! message delivery, the first-failure slot, finished flags, the
//! blocked-op registry behind timeout diagnostics, and the hooks of
//! the reliable-delivery protocol (ack publication and receiver-driven
//! recovery). Two backends implement it:
//!
//! - [`crate::fabric_local`] — the in-process backend: one mailbox per
//!   rank behind shared memory, zero-copy delivery, and an *optional*
//!   transport (only when a fault plan is installed), so the chaos-off
//!   hot path stays allocation-free;
//! - [`crate::fabric_socket`] — the multi-process backend over
//!   Unix-domain or TCP sockets, where the reliable transport is the
//!   *mandatory* wire layer (a real network can really lose frames).
//!
//! [`crate::Comm`] holds an `Arc<dyn Fabric>`, so every point-to-point
//! and collective algorithm is backend-generic by construction.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::{MpsError, MpsResult};
use crate::reliable::Transport;
use crate::stats::SharedStats;

/// Locks `m`, recovering the guarded data if a panicking thread
/// poisoned the mutex. The runtime's shared structures (mailboxes,
/// retransmit windows, holdback buffers) are kept consistent by the
/// protocol itself — worst case a frame is delivered or retransmitted
/// twice, which the receiver's dedup absorbs — so an orderly
/// [`MpsError::PeerFailed`] on the survivors must never be converted
/// into an opaque poisoned-lock panic.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A single in-flight message.
#[derive(Debug)]
pub(crate) struct Packet {
    pub src: usize,
    pub tag: u64,
    pub data: Bytes,
}

/// The first rank failure observed in the universe.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub rank: usize,
    pub error: MpsError,
}

impl Failure {
    /// One-line description for peers' `PeerFailed` errors (drops the
    /// multi-line diagnostic report of a timeout).
    pub(crate) fn brief(&self) -> String {
        match &self.error {
            MpsError::PeerFailed { msg, .. } => msg.clone(),
            MpsError::Timeout { src, op, waited, .. } => {
                format!("{op} from rank {src} timed out after {waited:.1?}")
            }
            e @ (MpsError::CollectiveMismatch { .. }
            | MpsError::Protocol { .. }
            | MpsError::PeerDown { .. }
            | MpsError::DeliveryFailed { .. }) => e.to_string(),
        }
    }
}

/// What a rank is currently blocked waiting for.
#[derive(Debug, Clone)]
pub(crate) struct BlockedOp {
    pub src: usize,
    pub tag: u64,
    pub op: &'static str,
    pub since: Instant,
}

/// One rank's inbound message queue (mutex + condvar, so a failure can
/// wake *every* blocked receiver, which per-pair channels cannot).
#[derive(Default)]
pub(crate) struct Mailbox {
    pub(crate) queue: Mutex<VecDeque<Packet>>,
    pub(crate) arrived: Condvar,
}

impl Mailbox {
    /// Enqueues `pkt` and wakes every waiter. Never blocks.
    pub(crate) fn push(&self, pkt: Packet) {
        lock_recover(&self.queue).push_back(pkt);
        self.arrived.notify_all();
    }

    /// Number of undrained packets (diagnostics only).
    pub(crate) fn backlog(&self) -> usize {
        lock_recover(&self.queue).len()
    }

    /// The matching wait loop shared by both backends: runs `matcher`
    /// over the queue until it yields, a failure is observed, the
    /// source finishes with no matching message in flight, or a
    /// deadline passes. `failure` and `src_finished` are backend
    /// predicates evaluated under the queue lock, exactly like the
    /// pre-trait fabric did.
    pub(crate) fn await_match_until(
        &self,
        deadline: Instant,
        slice: Option<Instant>,
        failure: impl Fn() -> Option<Failure>,
        src_finished: impl Fn() -> bool,
        matcher: Matcher<'_>,
    ) -> AwaitOutcome {
        let mut queue = lock_recover(&self.queue);
        loop {
            if let Some(hit) = matcher(&mut queue) {
                return AwaitOutcome::Matched(hit);
            }
            if let Some(fail) = failure() {
                return AwaitOutcome::Failed(fail);
            }
            // The matcher just drained the queue without a hit, so if
            // the source has terminated the message can never arrive.
            if src_finished() {
                return AwaitOutcome::SourceFinished;
            }
            let now = Instant::now();
            if now >= deadline {
                return AwaitOutcome::TimedOut;
            }
            if slice.is_some_and(|s| now >= s) {
                return AwaitOutcome::SliceExpired;
            }
            let wake = slice.map_or(deadline, |s| s.min(deadline));
            queue = self
                .arrived
                .wait_timeout(queue, wake - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// The mailbox matcher type: drains packets it does not want into
/// caller-owned storage and returns `Some` on a match (or an error of
/// its own, e.g. a collective mismatch). The concrete `FnMut` lives in
/// [`crate::Comm`]; the trait object keeps [`Fabric`] object-safe.
pub(crate) type Matcher<'m> = &'m mut dyn FnMut(&mut VecDeque<Packet>) -> Option<MpsResult<Packet>>;

/// Result of [`Fabric::await_match`].
pub(crate) enum AwaitOutcome {
    Matched(MpsResult<Packet>),
    Failed(Failure),
    SourceFinished,
    TimedOut,
    /// Only from [`Fabric::await_match_until`] with a slice deadline:
    /// the slice (not the overall deadline) expired.
    SliceExpired,
}

/// How a backend satisfied one receiver-driven recovery request.
pub(crate) enum Recovery {
    /// `n` frames were re-delivered synchronously out of a locally
    /// reachable retransmit window (`0` means the sender has produced
    /// nothing at or above the requested sequence — patience, not
    /// retry).
    Resent(usize),
    /// The request went on the wire to the remote sender (a socket
    /// NACK); frames — or a nothing-to-recover notice — arrive
    /// asynchronously through the mailbox.
    Requested,
}

/// Runtime state shared by every rank of one universe, behind one of
/// the two backends. All methods are callable from any rank thread.
pub(crate) trait Fabric: Send + Sync {
    /// Number of ranks in the universe.
    fn size(&self) -> usize;

    /// The receive deadline of this universe.
    fn timeout(&self) -> Duration;

    /// Static backend name (`"local"` / `"socket"`), for diagnostics.
    fn backend(&self) -> &'static str;

    /// The reliable-delivery engine, when one is live. The local
    /// backend returns `None` unless a fault plan is installed; the
    /// socket backend always has one (its wire layer).
    fn transport(&self) -> Option<&Transport>;

    /// The atomic counter block of `rank`. Backends that only hold
    /// local state (sockets) serve their own rank.
    fn shared_stats(&self, rank: usize) -> &SharedStats;

    /// Sends one application payload from the local rank `src` to
    /// `dst`, framing/transporting as the backend requires. Never
    /// blocks on the receiver; a send-side protocol error (e.g. an
    /// oversized frame) is recorded as the universe failure.
    fn send(&self, src: usize, dst: usize, tag: u64, data: Bytes);

    /// Runs `matcher` over `rank`'s mailbox until it yields, the
    /// deadline passes, a failure is recorded, or `src` finishes
    /// without a matching message in flight. When `slice` expires
    /// first the wait returns [`AwaitOutcome::SliceExpired`] so the
    /// caller can drive reliable-delivery recovery and re-enter.
    fn await_match_until(
        &self,
        rank: usize,
        src: usize,
        deadline: Instant,
        slice: Option<Instant>,
        matcher: Matcher<'_>,
    ) -> AwaitOutcome;

    /// Records the first failure and wakes every blocked rank. Later
    /// failures (cascades of the first) are dropped.
    fn record_failure(&self, rank: usize, error: MpsError);

    /// The first failure observed, if any.
    fn failure(&self) -> Option<Failure>;

    /// Marks `rank` as cleanly terminated and wakes receivers, so a
    /// rank waiting on a message this one will never send fails fast
    /// instead of running out the timeout.
    fn mark_finished(&self, rank: usize);

    fn is_finished(&self, rank: usize) -> bool;

    fn set_blocked(&self, rank: usize, op: Option<BlockedOp>);

    /// Publishes the receiver's cumulative ack for the link
    /// `src → dst` (`dst` is the calling rank), so the sender can
    /// prune its retransmit window.
    fn publish_ack(&self, src: usize, dst: usize, next_seq: u64);

    /// Receiver-driven recovery for the link `src → dst`: re-request
    /// everything with sequence ≥ `from_seq`.
    fn recover(&self, src: usize, dst: usize, from_seq: u64, attempt: u32) -> Recovery;

    /// One-line-per-rank snapshot of the universe, for timeout reports.
    fn dump(&self) -> String;
}

impl dyn Fabric + '_ {
    /// [`Fabric::await_match_until`] with the universe's default
    /// deadline and no slice.
    pub(crate) fn await_match(
        &self,
        rank: usize,
        src: usize,
        matcher: Matcher<'_>,
    ) -> AwaitOutcome {
        self.await_match_until(rank, src, Instant::now() + self.timeout(), None, matcher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recover_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn mailbox_push_and_backlog() {
        let mb = Mailbox::default();
        mb.push(Packet { src: 0, tag: 1, data: Bytes::new() });
        mb.push(Packet { src: 1, tag: 2, data: Bytes::new() });
        assert_eq!(mb.backlog(), 2);
    }
}
