//! Shared runtime state of one universe.
//!
//! All ranks of a universe share one [`Fabric`]: per-rank mailboxes
//! (mutex + condvar, so a failure can wake *every* blocked receiver,
//! which per-pair channels cannot), the first-failure slot, per-rank
//! finished flags, a registry of what every rank is currently blocked
//! on (the raw material of timeout diagnostics), and per-rank atomic
//! communication counters readable from any thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::MpsError;
use crate::reliable::Transport;
use crate::stats::SharedStats;

/// A single in-flight message.
#[derive(Debug)]
pub(crate) struct Packet {
    pub src: usize,
    pub tag: u64,
    pub data: Bytes,
}

/// The first rank failure observed in the universe.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub rank: usize,
    pub error: MpsError,
}

impl Failure {
    /// One-line description for peers' `PeerFailed` errors (drops the
    /// multi-line diagnostic report of a timeout).
    pub(crate) fn brief(&self) -> String {
        match &self.error {
            MpsError::PeerFailed { msg, .. } => msg.clone(),
            MpsError::Timeout { src, op, waited, .. } => {
                format!("{op} from rank {src} timed out after {waited:.1?}")
            }
            e @ (MpsError::CollectiveMismatch { .. }
            | MpsError::Protocol { .. }
            | MpsError::DeliveryFailed { .. }) => e.to_string(),
        }
    }
}

/// What a rank is currently blocked waiting for.
#[derive(Debug, Clone)]
pub(crate) struct BlockedOp {
    pub src: usize,
    pub tag: u64,
    pub op: &'static str,
    pub since: Instant,
}

/// One rank's inbound message queue.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Packet>>,
    arrived: Condvar,
}

/// Runtime state shared by every rank of one universe.
pub(crate) struct Fabric {
    size: usize,
    mailboxes: Vec<Mailbox>,
    failure: Mutex<Option<Failure>>,
    finished: Vec<AtomicBool>,
    blocked: Vec<Mutex<Option<BlockedOp>>>,
    pub(crate) stats: Vec<SharedStats>,
    timeout: Duration,
    trace: Option<tc_trace::TraceHandle>,
    /// Reliable-delivery engine; present only when a
    /// [`crate::FaultPlan`] is installed, so the chaos-off hot path is
    /// byte-for-byte the pre-transport one.
    transport: Option<Transport>,
}

impl Fabric {
    pub(crate) fn new(
        size: usize,
        timeout: Duration,
        trace: Option<tc_trace::TraceHandle>,
        transport: Option<Transport>,
    ) -> Self {
        Self {
            size,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            failure: Mutex::new(None),
            finished: (0..size).map(|_| AtomicBool::new(false)).collect(),
            blocked: (0..size).map(|_| Mutex::new(None)).collect(),
            stats: (0..size).map(|_| SharedStats::default()).collect(),
            timeout,
            trace,
            transport,
        }
    }

    pub(crate) fn transport(&self) -> Option<&Transport> {
        self.transport.as_ref()
    }

    pub(crate) fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Delivers `pkt` to `dst`'s mailbox. Never blocks; delivery to a
    /// finished rank silently parks the message (the scope reclaims it).
    pub(crate) fn deliver(&self, dst: usize, pkt: Packet) {
        let mb = &self.mailboxes[dst];
        mb.queue.lock().expect("mailbox lock").push_back(pkt);
        mb.arrived.notify_all();
    }

    /// Records the first failure and wakes every blocked rank. Later
    /// failures (cascades of the first) are dropped.
    pub(crate) fn record_failure(&self, rank: usize, error: MpsError) {
        {
            let mut slot = self.failure.lock().expect("failure lock");
            if slot.is_none() {
                *slot = Some(Failure { rank, error });
            }
        }
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    pub(crate) fn failure(&self) -> Option<Failure> {
        self.failure.lock().expect("failure lock").clone()
    }

    /// Marks `rank` as cleanly terminated and wakes receivers, so a
    /// rank waiting on a message this one will never send fails fast
    /// instead of running out the timeout.
    pub(crate) fn mark_finished(&self, rank: usize) {
        // A finishing rank first releases any frames the fault plan was
        // holding back, so a reordered frame cannot be stranded behind
        // a sender that will never transmit again.
        if let Some(t) = &self.transport {
            t.flush_rank(self, rank);
        }
        self.finished[rank].store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.arrived.notify_all();
        }
    }

    pub(crate) fn is_finished(&self, rank: usize) -> bool {
        self.finished[rank].load(Ordering::SeqCst)
    }

    pub(crate) fn set_blocked(&self, rank: usize, op: Option<BlockedOp>) {
        *self.blocked[rank].lock().expect("blocked lock") = op;
    }

    /// Runs `matcher` over `rank`'s mailbox until it yields, the
    /// deadline passes, a failure is recorded, or `src` finishes
    /// without a matching message in flight.
    ///
    /// `matcher` drains packets it does not want into caller-owned
    /// storage and returns `Some` on a match (or an error of its own,
    /// e.g. a collective mismatch).
    pub(crate) fn await_match<T>(
        &self,
        rank: usize,
        src: usize,
        matcher: impl FnMut(&mut VecDeque<Packet>) -> Option<T>,
    ) -> AwaitOutcome<T> {
        self.await_match_until(rank, src, Instant::now() + self.timeout, None, matcher)
    }

    /// [`Fabric::await_match`] with an explicit overall deadline and an
    /// optional *slice* deadline: when `slice` expires first the wait
    /// returns [`AwaitOutcome::SliceExpired`] so the caller can run
    /// side work (reliable-delivery recovery) and re-enter with the
    /// same overall deadline.
    pub(crate) fn await_match_until<T>(
        &self,
        rank: usize,
        src: usize,
        deadline: Instant,
        slice: Option<Instant>,
        mut matcher: impl FnMut(&mut VecDeque<Packet>) -> Option<T>,
    ) -> AwaitOutcome<T> {
        let mb = &self.mailboxes[rank];
        let mut queue = mb.queue.lock().expect("mailbox lock");
        loop {
            if let Some(hit) = matcher(&mut queue) {
                return AwaitOutcome::Matched(hit);
            }
            if let Some(fail) = self.failure() {
                return AwaitOutcome::Failed(fail);
            }
            // The matcher just drained the queue without a hit, so if
            // the source has terminated the message can never arrive.
            if self.is_finished(src) {
                return AwaitOutcome::SourceFinished;
            }
            let now = Instant::now();
            if now >= deadline {
                return AwaitOutcome::TimedOut;
            }
            if slice.is_some_and(|s| now >= s) {
                return AwaitOutcome::SliceExpired;
            }
            let wake = slice.map_or(deadline, |s| s.min(deadline));
            let (q, res) = mb.arrived.wait_timeout(queue, wake - now).expect("mailbox lock");
            queue = q;
            let _ = res;
        }
    }

    /// One-line-per-rank snapshot of the universe, for timeout reports.
    pub(crate) fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in 0..self.size {
            let state = if self.is_finished(r) {
                "finished".to_string()
            } else {
                match self.blocked[r].lock().expect("blocked lock").as_ref() {
                    Some(b) => format!(
                        "blocked in {} from rank {} (tag {:#x}) for {:.1?}",
                        b.op,
                        b.src,
                        b.tag,
                        b.since.elapsed()
                    ),
                    None => "running".to_string(),
                }
            };
            let s = self.stats[r].snapshot();
            let inflight = self.mailboxes[r].queue.lock().expect("mailbox lock").len();
            let _ = writeln!(
                out,
                "  rank {r}: {state}; sent {} msgs / {} B, recvd {} msgs / {} B, \
                 {inflight} undrained",
                s.msgs_sent, s.bytes_sent, s.msgs_recv, s.bytes_recv
            );
            // With tracing live, each rank's recent events say *what*
            // it was doing on the way into the hang.
            if let Some(trace) = &self.trace {
                for line in trace.recent(r, Self::DUMP_TRACE_EVENTS) {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        out
    }

    /// How many of each rank's most recent trace events a timeout
    /// report includes.
    const DUMP_TRACE_EVENTS: usize = 8;
}

/// Result of [`Fabric::await_match`].
pub(crate) enum AwaitOutcome<T> {
    Matched(T),
    Failed(Failure),
    SourceFinished,
    TimedOut,
    /// Only from [`Fabric::await_match_until`] with a slice deadline:
    /// the slice (not the overall deadline) expired.
    SliceExpired,
}
