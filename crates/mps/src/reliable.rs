//! Reliable, exactly-once, in-order delivery over a lossy frame sink.
//!
//! Every point-to-point payload travels inside a *frame*: a 24-byte
//! header (per-link sequence number, the application tag, payload
//! length, CRC32c) plus the payload. The receiver re-derives the
//! sender's order from the sequence numbers:
//!
//! - **corruption** (truncate/bit-flip) is caught by the length field
//!   and checksum — a damaged frame is counted and discarded, and the
//!   gap recovered like a drop;
//! - **duplicates** (injected, or byproducts of retransmission) are
//!   discarded by comparing against the next expected sequence number;
//! - **reordering** parks early frames in a bounded buffer until the
//!   gap closes;
//! - **loss** is repaired by receiver-driven NACK/retransmit with
//!   exponential backoff: every sent frame stays in a shared per-link
//!   retransmit window until the receiver's cumulative ack passes it,
//!   so recovery needs no cooperation from the (possibly blocked)
//!   sender thread. After `max_retries` fruitless rounds the receive
//!   fails with [`crate::MpsError::DeliveryFailed`] instead of
//!   hanging.
//!
//! The engine is fabric-agnostic: frames leave through a [`FrameSink`],
//! which the in-process backend implements as a mailbox push (frames
//! get "lost" only when a [`FaultPlan`] injects faults) and the socket
//! backend implements as a wire write (frames get lost for real). The
//! window prune is driven by the ack watermark the receiver publishes,
//! so memory per link is bounded by the amount genuinely in flight
//! plus the reorder-buffer cap.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bytes::Bytes;

use crate::chaos::{ActiveGuard, Corruption, FaultPlan};
use crate::error::{MpsError, MpsResult};
use crate::fabric::{lock_recover, Packet};
use crate::stats::{ReliabilityStats, SharedReliabilityStats};

/// Tag marking transport frames in a mailbox. Bit 63 is clear (so a
/// frame is never mistaken for a collective packet) and the value sits
/// far above [`crate::MAX_USER_TAG`], so it cannot collide with
/// application traffic either.
pub(crate) const TRANSPORT_TAG: u64 = (1 << 62) | 0xF8A3;

/// Tag of a *nothing-to-recover* notice: a remote sender's answer to a
/// NACK that found no frame at or above the requested sequence. The
/// payload is the 8-byte requested sequence number. Only the socket
/// backend produces these (the in-process backend resolves the same
/// question synchronously against the shared window).
pub(crate) const TRANSPORT_NOTHING_TAG: u64 = (1 << 62) | 0xF8A4;

/// Frame header size: seq (8) + inner tag (8) + payload len (4) + CRC32c (4).
const HEADER: usize = 24;

/// Largest payload one frame can carry (the header's length field is
/// 32 bits). Larger sends fail with a typed [`MpsError::Protocol`].
pub(crate) const MAX_FRAME_PAYLOAD: usize = u32::MAX as usize;

/// Out-of-order frames parked per link before the newest-seq ones are
/// shed (they are recovered by retransmission once the gap closes).
const REORDER_CAP: usize = 64;

/// Where encoded frames go once the transport is done with them. The
/// implementation decides what a "wire" is: the in-process fabric
/// pushes into the destination's mailbox, the socket fabric writes to
/// the peer's stream.
pub(crate) trait FrameSink: Sync {
    /// Puts one encoded frame of the link `src → dst` on the wire.
    /// Must not block on the receiving rank's progress.
    fn deliver_frame(&self, src: usize, dst: usize, frame: Bytes);
}

/// Rejects payloads that cannot be framed (length field is u32).
/// Called on the send path *before* a sequence number is consumed, so
/// a rejected payload perturbs nothing.
pub(crate) fn check_frame_len(rank: usize, len: usize) -> MpsResult<()> {
    if len > MAX_FRAME_PAYLOAD {
        return Err(MpsError::Protocol {
            rank,
            msg: format!(
                "payload of {len} bytes exceeds the frame limit of {MAX_FRAME_PAYLOAD} bytes"
            ),
        });
    }
    Ok(())
}

/// Encodes one frame: header followed by the payload, CRC32c over
/// everything except the CRC field itself. Fails with a typed error
/// (never panics) when the payload exceeds [`MAX_FRAME_PAYLOAD`];
/// `src` names the sending rank in that error.
pub(crate) fn encode_frame(src: usize, seq: u64, tag: u64, payload: &Bytes) -> MpsResult<Bytes> {
    check_frame_len(src, payload.len())?;
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // CRC placeholder
    buf.extend_from_slice(payload.as_slice());
    let crc = crc32c_pair(&buf[..20], &buf[HEADER..]);
    buf[20..24].copy_from_slice(&crc.to_le_bytes());
    Ok(Bytes::from(buf))
}

/// Decodes and verifies a frame; `None` means the frame is damaged
/// (truncated, extended, or bit-flipped) and must be treated as lost.
pub(crate) fn decode_frame(frame: &Bytes) -> Option<(u64, u64, Bytes)> {
    let b = frame.as_slice();
    if b.len() < HEADER {
        return None;
    }
    let len = u32::from_le_bytes(b[16..20].try_into().unwrap()) as usize;
    if b.len() != HEADER + len {
        return None;
    }
    let stored = u32::from_le_bytes(b[20..24].try_into().unwrap());
    if crc32c_pair(&b[..20], &b[HEADER..]) != stored {
        return None;
    }
    let seq = u64::from_le_bytes(b[..8].try_into().unwrap());
    let tag = u64::from_le_bytes(b[8..16].try_into().unwrap());
    // The payload view shares the frame allocation; the 24-byte header
    // keeps it 8-byte aligned, so typed decoding stays zero-copy.
    Some((seq, tag, frame.slice(HEADER..)))
}

/// Applies a wire-level corruption to a copy of `frame`.
fn corrupt_frame(frame: &Bytes, c: Corruption) -> Bytes {
    let mut v = frame.to_vec();
    match c {
        Corruption::Truncate(entropy) => {
            v.truncate((entropy % v.len().max(1) as u64) as usize);
        }
        Corruption::BitFlip(entropy) => {
            let bit = entropy % (v.len() as u64 * 8);
            v[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
    Bytes::from(v)
}

/// CRC32c (Castagnoli) over two concatenated slices, table-driven.
fn crc32c_pair(a: &[u8], b: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in a.iter().chain(b) {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// CRC32c for one slice (known-answer-tested below).
#[cfg(test)]
fn crc32c(data: &[u8]) -> u32 {
    crc32c_pair(data, &[])
}

const CRC32C_TABLE: [u32; 256] = build_crc32c_table();

const fn build_crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Sender-side retransmit window of one directed link.
#[derive(Debug, Default)]
struct SendWindow {
    /// Sequence number of the next frame sent on this link.
    next_seq: u64,
    /// Unacked frames, ascending by sequence number.
    frames: VecDeque<(u64, Bytes)>,
}

/// The shared reliable-delivery engine of one universe. On the
/// in-process fabric it exists only when a [`FaultPlan`] is installed;
/// on the socket fabric it is always live (it *is* the wire protocol).
pub(crate) struct Transport {
    plan: FaultPlan,
    size: usize,
    /// Per-link retransmit windows, indexed `src * size + dst`.
    windows: Vec<Mutex<SendWindow>>,
    /// Per-link cumulative acks: the receiver's next expected sequence
    /// number, published so the *sender* can prune its window.
    acked: Vec<AtomicU64>,
    /// Frames held back by reorder injection, flushed by the link's
    /// next transmission (or by recovery/finish).
    held: Vec<Mutex<Vec<Bytes>>>,
    /// Per-rank reliability counters (sender-side events land on the
    /// sending rank, receiver-side events on the receiving rank).
    stats: Vec<SharedReliabilityStats>,
    _active: ActiveGuard,
}

impl Transport {
    pub(crate) fn new(size: usize, plan: FaultPlan) -> Self {
        Self {
            plan,
            size,
            windows: (0..size * size).map(|_| Mutex::new(SendWindow::default())).collect(),
            acked: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            held: (0..size * size).map(|_| Mutex::new(Vec::new())).collect(),
            stats: (0..size).map(|_| SharedReliabilityStats::default()).collect(),
            _active: ActiveGuard::new(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn stats(&self, rank: usize) -> ReliabilityStats {
        self.stats[rank].snapshot()
    }

    fn link(&self, src: usize, dst: usize) -> usize {
        src * self.size + dst
    }

    /// Sends one application payload over the lossy link: frames it,
    /// appends it to the retransmit window (pruning everything the
    /// receiver has acked), and transmits subject to the fault plan.
    /// An over-long payload fails *before* consuming a sequence
    /// number, so the link stays usable after the error.
    pub(crate) fn send(
        &self,
        sink: &dyn FrameSink,
        src: usize,
        dst: usize,
        tag: u64,
        payload: Bytes,
    ) -> MpsResult<()> {
        check_frame_len(src, payload.len())?;
        let l = self.link(src, dst);
        let (seq, frame) = {
            let mut w = lock_recover(&self.windows[l]);
            let acked = self.acked[l].load(Ordering::Acquire);
            while w.frames.front().is_some_and(|(s, _)| *s < acked) {
                w.frames.pop_front();
            }
            let seq = w.next_seq;
            let frame = encode_frame(src, seq, tag, &payload)?;
            w.next_seq += 1;
            w.frames.push_back((seq, frame.clone()));
            (seq, frame)
        };
        let sent = self.stats[src].frames_sent.fetch_add(1, Ordering::Relaxed) + 1;
        // Process-level chaos: abort this rank's process at its nth
        // send, *before* the frame reaches the wire — the peer sees a
        // hard connection loss, exactly like a SIGKILL mid-stream.
        if let Some((crash_rank, nth)) = self.plan.crash_point() {
            if crash_rank == src && sent == nth {
                eprintln!("chaos: crashing rank {src} at send #{nth} (planned process fault)");
                std::process::abort();
            }
        }
        self.transmit(sink, src, dst, seq, &frame, 0);
        Ok(())
    }

    /// Puts one frame on the wire, applying the plan's decision for
    /// `attempt`. Never blocks on the receiver; an injected delay
    /// stalls the calling thread only.
    fn transmit(
        &self,
        sink: &dyn FrameSink,
        src: usize,
        dst: usize,
        seq: u64,
        frame: &Bytes,
        attempt: u32,
    ) {
        let d = self.plan.decide(src, dst, seq, attempt);
        let st = &self.stats[src];
        if let Some(delay) = d.delay {
            st.injected_delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        if d.drop {
            st.injected_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let wire = match d.corrupt {
            Some(c) => {
                st.injected_corruptions.fetch_add(1, Ordering::Relaxed);
                corrupt_frame(frame, c)
            }
            None => frame.clone(),
        };
        if d.duplicate {
            st.injected_dups.fetch_add(1, Ordering::Relaxed);
            sink.deliver_frame(src, dst, wire.clone());
        }
        if d.reorder {
            st.injected_reorders.fetch_add(1, Ordering::Relaxed);
            lock_recover(&self.held[self.link(src, dst)]).push(wire);
            return;
        }
        sink.deliver_frame(src, dst, wire);
        // Any frame held back on this link is now "later than" a newer
        // frame — deliver it out of order, as the injection intended.
        self.flush_held(sink, src, dst);
    }

    fn flush_held(&self, sink: &dyn FrameSink, src: usize, dst: usize) -> usize {
        let held = {
            let mut h = lock_recover(&self.held[self.link(src, dst)]);
            std::mem::take(&mut *h)
        };
        let n = held.len();
        for frame in held {
            sink.deliver_frame(src, dst, frame);
        }
        n
    }

    /// Receiver-driven recovery: re-deliver every unacked frame of
    /// `src → dst` with sequence ≥ `from_seq` (flushing held-back
    /// frames first). Returns how many frames went back on the wire —
    /// zero means the sender has not produced `from_seq` yet, which is
    /// patience territory, not retry territory.
    pub(crate) fn retransmit_from(
        &self,
        sink: &dyn FrameSink,
        src: usize,
        dst: usize,
        from_seq: u64,
        attempt: u32,
    ) -> usize {
        let mut n = self.flush_held(sink, src, dst);
        let frames: Vec<(u64, Bytes)> = {
            let w = lock_recover(&self.windows[self.link(src, dst)]);
            w.frames.iter().filter(|(s, _)| *s >= from_seq).cloned().collect()
        };
        for (seq, frame) in frames {
            self.stats[src].retransmits.fetch_add(1, Ordering::Relaxed);
            tc_trace::instant_with(tc_trace::names::RETRANSMIT, tc_trace::Category::Comm, || {
                vec![("src", src.into()), ("seq", seq.into()), ("attempt", attempt.into())]
            });
            self.transmit(sink, src, dst, seq, &frame, attempt);
            n += 1;
        }
        n
    }

    /// Publishes the receiver's cumulative ack for `src → dst`, which
    /// lets the sender prune its retransmit window on its next send.
    pub(crate) fn ack(&self, src: usize, dst: usize, next_seq: u64) {
        self.acked[self.link(src, dst)].fetch_max(next_seq, Ordering::AcqRel);
    }

    /// Counts one receiver-driven recovery round on `rank`.
    pub(crate) fn note_nack(&self, rank: usize) {
        self.stats[rank].nacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Delivers every held-back frame originating at `rank` (called
    /// when the rank finishes, so reorder holdbacks cannot outlive
    /// their sender).
    pub(crate) fn flush_rank(&self, sink: &dyn FrameSink, rank: usize) {
        for dst in 0..self.size {
            self.flush_held(sink, rank, dst);
        }
    }

    /// Whether every frame `src` ever sent has been acked by its
    /// receiver and no holdback is pending — i.e. the rank can
    /// disconnect without stranding in-flight data. Used by the socket
    /// backend's orderly-shutdown drain.
    pub(crate) fn outbound_drained(&self, src: usize) -> bool {
        for dst in 0..self.size {
            let l = self.link(src, dst);
            if !lock_recover(&self.held[l]).is_empty() {
                return false;
            }
            let acked = self.acked[l].load(Ordering::Acquire);
            if lock_recover(&self.windows[l]).frames.iter().any(|(s, _)| *s >= acked) {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transport")
            .field("size", &self.size)
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// Receiver-side state of one inbound link (owned by the receiving
/// rank's [`crate::Comm`], allocated only when a transport exists).
#[derive(Debug)]
pub(crate) struct LinkRx {
    /// Next sequence number this receiver will accept.
    pub next_seq: u64,
    /// Out-of-order frames parked until the gap closes, keyed by seq.
    parked: BTreeMap<u64, (u64, Bytes)>,
    /// Recovery rounds driven for the current gap (reset on progress).
    pub attempts: u32,
    /// When the next recovery round for this link is due.
    pub nack_at: Option<Instant>,
    /// A damaged frame was seen since the last accepted one: evidence
    /// that something is missing even if the parked buffer is empty.
    corrupt_evidence: bool,
}

impl LinkRx {
    fn new() -> Self {
        Self {
            next_seq: 0,
            parked: BTreeMap::new(),
            attempts: 0,
            nack_at: None,
            corrupt_evidence: false,
        }
    }

    /// Whether something is demonstrably missing on this link.
    pub(crate) fn has_gap_evidence(&self) -> bool {
        self.corrupt_evidence || !self.parked.is_empty()
    }

    /// A recovery round found nothing at or above `next_seq` in the
    /// retransmit window. Every genuinely missing frame would still be
    /// there (frames are only pruned below the receiver's own ack), so
    /// this proves there is no gap: any corruption seen must have been
    /// a stale duplicate. Reset the budget and re-arm patience.
    pub(crate) fn note_nothing_to_recover(&mut self, rearm: Instant) {
        debug_assert!(self.parked.is_empty(), "parked frames imply unacked window entries");
        self.attempts = 0;
        self.corrupt_evidence = false;
        self.nack_at = Some(rearm);
    }
}

/// All inbound-link state of one receiving rank.
#[derive(Debug)]
pub(crate) struct RxState {
    links: Vec<LinkRx>,
}

impl RxState {
    pub(crate) fn new(size: usize) -> Self {
        Self { links: (0..size).map(|_| LinkRx::new()).collect() }
    }

    pub(crate) fn link(&mut self, src: usize) -> &mut LinkRx {
        &mut self.links[src]
    }

    pub(crate) fn links(&mut self) -> impl Iterator<Item = (usize, &mut LinkRx)> {
        self.links.iter_mut().enumerate()
    }

    /// Ingests one raw frame arriving at `rank`, appending every
    /// application packet it releases (the frame itself plus any parked
    /// successors it unblocks) to `out` in sequence order. Cumulative
    /// ack progress is published through `ack` (with the new
    /// next-expected sequence number), so the caller decides whether
    /// that is a shared-memory store or a wire message.
    pub(crate) fn ingest(
        &mut self,
        transport: &Transport,
        rank: usize,
        src: usize,
        frame: &Bytes,
        out: &mut Vec<Packet>,
        ack: &mut dyn FnMut(u64),
    ) {
        let st = &transport.stats[rank];
        let link = &mut self.links[src];
        let Some((seq, tag, payload)) = decode_frame(frame) else {
            st.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            tc_trace::instant_with(
                tc_trace::names::FRAME_CORRUPT,
                tc_trace::Category::Comm,
                || vec![("src", src.into()), ("bytes", frame.len().into())],
            );
            link.corrupt_evidence = true;
            // Recover promptly: a damaged frame is hard evidence of a
            // gap, no need to wait out a patience period.
            link.nack_at.get_or_insert_with(Instant::now);
            return;
        };
        if seq < link.next_seq {
            st.dup_frames.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if seq > link.next_seq {
            if link.parked.insert(seq, (tag, payload)).is_some() {
                st.dup_frames.fetch_add(1, Ordering::Relaxed);
            } else {
                st.reordered_frames.fetch_add(1, Ordering::Relaxed);
                st.reorder_depth_max.fetch_max(link.parked.len() as u64, Ordering::Relaxed);
                // Bounded memory: shed the newest frames beyond the
                // cap. The shed frames are only recoverable by
                // retransmission, so the drop must not stay invisible
                // until a patience timer fires — count it and make the
                // link's recovery round due *now*, which re-requests
                // everything from the gap up through the evicted
                // sequence numbers.
                let mut evicted = 0u64;
                while link.parked.len() > REORDER_CAP {
                    let last = *link.parked.keys().next_back().expect("non-empty");
                    link.parked.remove(&last);
                    evicted += 1;
                }
                if evicted > 0 {
                    st.reorder_evicted.fetch_add(evicted, Ordering::Relaxed);
                    link.nack_at = Some(Instant::now());
                }
            }
            link.nack_at.get_or_insert_with(|| Instant::now() + transport.plan.nack_base());
            return;
        }
        // In-order frame: accept it and drain the parked run behind it.
        out.push(Packet { src, tag, data: payload });
        link.next_seq += 1;
        while let Some((tag, payload)) = link.parked.remove(&link.next_seq) {
            out.push(Packet { src, tag, data: payload });
            link.next_seq += 1;
        }
        link.attempts = 0;
        link.nack_at = None;
        link.corrupt_evidence = false;
        ack(link.next_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Test sink that records delivered frames.
    struct VecSink(Mutex<Vec<(usize, usize, Bytes)>>);

    impl VecSink {
        fn new() -> Self {
            Self(Mutex::new(Vec::new()))
        }

        fn delivered(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    impl FrameSink for VecSink {
        fn deliver_frame(&self, src: usize, dst: usize, frame: Bytes) {
            self.0.lock().unwrap().push((src, dst, frame));
        }
    }

    fn frame(seq: u64, tag: u64, payload: Vec<u8>) -> Bytes {
        encode_frame(0, seq, tag, &Bytes::from(payload)).expect("small payload")
    }

    #[test]
    fn crc32c_known_answer() {
        // The canonical CRC32c check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc_pair_matches_concatenation() {
        let all = b"header and payload".to_vec();
        assert_eq!(crc32c_pair(&all[..6], &all[6..]), crc32c(&all));
    }

    #[test]
    fn frame_roundtrip() {
        let payload = Bytes::from((0u8..200).collect::<Vec<u8>>());
        let f = encode_frame(0, 7, 0x1234, &payload).expect("valid length");
        let (seq, tag, p) = decode_frame(&f).expect("valid frame");
        assert_eq!((seq, tag), (7, 0x1234));
        assert_eq!(p, payload);
        // Zero-copy: the payload view aliases the frame allocation and
        // stays 8-byte aligned for typed decoding.
        assert_eq!(p.as_ptr() as usize, f.as_ptr() as usize + HEADER);
        assert_eq!(p.as_ptr() as usize % 8, 0);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = frame(0, 1, vec![]);
        let (seq, tag, p) = decode_frame(&f).expect("valid frame");
        assert_eq!((seq, tag, p.len()), (0, 1, 0));
    }

    #[test]
    fn oversized_payload_is_a_typed_error() {
        // Boundary check without allocating 4 GiB: the length check is
        // the exact guard `encode_frame` and `Transport::send` apply.
        assert!(check_frame_len(3, MAX_FRAME_PAYLOAD).is_ok());
        match check_frame_len(3, MAX_FRAME_PAYLOAD + 1) {
            Err(MpsError::Protocol { rank, msg }) => {
                assert_eq!(rank, 3);
                assert!(msg.contains("exceeds the frame limit"), "{msg}");
            }
            other => panic!("expected a Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let f = frame(3, 9, vec![5u8; 64]);
        for keep in 0..f.len() {
            let cut = Bytes::from(f.as_slice()[..keep].to_vec());
            assert!(decode_frame(&cut).is_none(), "truncation to {keep} bytes undetected");
        }
    }

    #[test]
    fn every_single_bitflip_is_detected() {
        let f = frame(11, 42, vec![0xAB; 32]);
        for bit in 0..f.len() * 8 {
            let flipped = corrupt_frame(&f, Corruption::BitFlip(bit as u64));
            assert!(decode_frame(&flipped).is_none(), "bit {bit} flip undetected");
        }
    }

    #[test]
    fn rx_reorders_dedups_and_acks() {
        let plan = FaultPlan::new(0);
        let transport = Transport::new(2, plan);
        let mut rx = RxState::new(2);
        let mk = |seq: u64| frame(seq, 100 + seq, vec![seq as u8]);
        let mut out = Vec::new();
        let mut acked = 0u64;
        // 2, 0, 2 (dup), 1 → released as 0, 1, 2 exactly once.
        for seq in [2, 0, 2, 1] {
            rx.ingest(&transport, 1, 0, &mk(seq), &mut out, &mut |n| acked = n);
        }
        let tags: Vec<u64> = out.iter().map(|p| p.tag).collect();
        assert_eq!(tags, vec![100, 101, 102]);
        let st = transport.stats(1);
        assert_eq!(st.dup_frames, 1);
        assert_eq!(st.reordered_frames, 1);
        assert_eq!(acked, 3, "cumulative ack published through the callback");
        assert!(!rx.link(0).has_gap_evidence());
    }

    #[test]
    fn rx_parks_bounded() {
        let transport = Transport::new(2, FaultPlan::new(0));
        let mut rx = RxState::new(2);
        let mut out = Vec::new();
        for seq in 1..(REORDER_CAP as u64 + 40) {
            let f = frame(seq, seq, vec![]);
            rx.ingest(&transport, 1, 0, &f, &mut out, &mut |_| {});
        }
        assert!(out.is_empty(), "gap at 0 never closed");
        assert!(rx.link(0).parked.len() <= REORDER_CAP);
        assert!(rx.link(0).has_gap_evidence());
    }

    #[test]
    fn reorder_eviction_is_counted_and_nacks_immediately() {
        let transport = Transport::new(2, FaultPlan::new(0));
        let mut rx = RxState::new(2);
        let mut out = Vec::new();
        // Park exactly up to the cap (seqs 1..=CAP; 0 is the gap): no
        // eviction yet, and the recovery timer sits a patience period
        // in the future.
        for seq in 1..=(REORDER_CAP as u64) {
            rx.ingest(&transport, 1, 0, &frame(seq, seq, vec![]), &mut out, &mut |_| {});
        }
        assert_eq!(transport.stats(1).reorder_evicted, 0);
        let patience = rx.link(0).nack_at.expect("armed");
        assert!(patience > Instant::now(), "no eviction → patience timer");
        // One more parked frame overflows the buffer.
        let before = Instant::now();
        rx.ingest(
            &transport,
            1,
            0,
            &frame(REORDER_CAP as u64 + 1, 7, vec![]),
            &mut out,
            &mut |_| {},
        );
        assert_eq!(transport.stats(1).reorder_evicted, 1, "eviction must be counted");
        let due = rx.link(0).nack_at.expect("armed");
        assert!(due <= Instant::now() && due >= before, "eviction must make recovery due now");
        assert!(rx.link(0).parked.len() <= REORDER_CAP);
    }

    #[test]
    fn corrupt_frame_flags_gap_evidence() {
        let transport = Transport::new(2, FaultPlan::new(0));
        let mut rx = RxState::new(2);
        let mut out = Vec::new();
        let f = frame(0, 7, vec![1, 2, 3]);
        rx.ingest(
            &transport,
            1,
            0,
            &corrupt_frame(&f, Corruption::BitFlip(13)),
            &mut out,
            &mut |_| {},
        );
        assert!(out.is_empty());
        assert!(rx.link(0).has_gap_evidence());
        assert_eq!(transport.stats(1).corrupt_frames, 1);
        // The pristine retransmission still gets through.
        rx.ingest(&transport, 1, 0, &f, &mut out, &mut |_| {});
        assert_eq!(out.len(), 1);
        assert!(!rx.link(0).has_gap_evidence());
    }

    #[test]
    fn send_and_recovery_survive_poisoned_locks() {
        // A rank thread that panics while holding transport locks must
        // not turn every surviving rank's send into a poisoned-lock
        // panic: the orderly PeerFailed path depends on survivors
        // still being able to transmit and recover.
        let t = Arc::new(Transport::new(2, FaultPlan::new(0)));
        let t2 = Arc::clone(&t);
        let _ = std::thread::spawn(move || {
            let _w = t2.windows[1].lock().unwrap(); // link 0→1
            let _h = t2.held[1].lock().unwrap();
            panic!("rank dies mid-send");
        })
        .join();
        assert!(t.windows[1].is_poisoned() && t.held[1].is_poisoned());
        let sink = VecSink::new();
        t.send(&sink, 0, 1, 7, Bytes::from(vec![1, 2, 3])).expect("send survives poison");
        assert_eq!(sink.delivered(), 1);
        assert_eq!(t.retransmit_from(&sink, 0, 1, 0, 1), 1, "recovery survives poison");
        assert!(!t.outbound_drained(0));
        t.ack(0, 1, 1);
        assert!(t.outbound_drained(0));
    }

    #[test]
    fn outbound_drained_tracks_acks_and_holdbacks() {
        let t = Transport::new(2, FaultPlan::new(0));
        let sink = VecSink::new();
        assert!(t.outbound_drained(0), "nothing sent yet");
        t.send(&sink, 0, 1, 1, Bytes::from(vec![1])).unwrap();
        t.send(&sink, 0, 1, 2, Bytes::from(vec![2])).unwrap();
        assert!(!t.outbound_drained(0));
        t.ack(0, 1, 1);
        assert!(!t.outbound_drained(0), "one frame still unacked");
        t.ack(0, 1, 2);
        assert!(t.outbound_drained(0));
        assert!(t.outbound_drained(1), "the idle rank is trivially drained");
    }
}
