//! Reliable, exactly-once, in-order delivery over a chaotic fabric.
//!
//! When a [`crate::FaultPlan`] is installed, every point-to-point
//! payload travels inside a *frame*: a 24-byte header (per-link
//! sequence number, the application tag, payload length, CRC32c) plus
//! the payload. The receiver re-derives the sender's order from the
//! sequence numbers:
//!
//! - **corruption** (truncate/bit-flip) is caught by the length field
//!   and checksum — a damaged frame is counted and discarded, and the
//!   gap recovered like a drop;
//! - **duplicates** (injected, or byproducts of retransmission) are
//!   discarded by comparing against the next expected sequence number;
//! - **reordering** parks early frames in a bounded buffer until the
//!   gap closes;
//! - **loss** is repaired by receiver-driven NACK/retransmit with
//!   exponential backoff: every sent frame stays in a shared per-link
//!   retransmit window until the receiver's cumulative ack passes it,
//!   so recovery needs no cooperation from the (possibly blocked)
//!   sender thread. After `max_retries` fruitless rounds the receive
//!   fails with [`crate::MpsError::DeliveryFailed`] instead of
//!   hanging.
//!
//! The window prune is driven by the ack watermark the receiver
//! publishes, so memory per link is bounded by the amount genuinely in
//! flight plus the reorder-buffer cap.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bytes::Bytes;

use crate::chaos::{ActiveGuard, Corruption, FaultPlan};
use crate::fabric::{Fabric, Packet};
use crate::stats::{ReliabilityStats, SharedReliabilityStats};

/// Tag marking transport frames in a mailbox. Bit 63 is clear (so a
/// frame is never mistaken for a collective packet) and the value sits
/// far above [`crate::MAX_USER_TAG`], so it cannot collide with
/// application traffic either.
pub(crate) const TRANSPORT_TAG: u64 = (1 << 62) | 0xF8A3;

/// Frame header size: seq (8) + inner tag (8) + payload len (4) + CRC32c (4).
const HEADER: usize = 24;

/// Out-of-order frames parked per link before the newest-seq ones are
/// shed (they are recovered by retransmission once the gap closes).
const REORDER_CAP: usize = 64;

/// Encodes one frame: header followed by the payload, CRC32c over
/// everything except the CRC field itself.
pub(crate) fn encode_frame(seq: u64, tag: u64, payload: &Bytes) -> Bytes {
    assert!(payload.len() <= u32::MAX as usize, "frame payload exceeds u32 length field");
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // CRC placeholder
    buf.extend_from_slice(payload.as_slice());
    let crc = crc32c_pair(&buf[..20], &buf[HEADER..]);
    buf[20..24].copy_from_slice(&crc.to_le_bytes());
    Bytes::from(buf)
}

/// Decodes and verifies a frame; `None` means the frame is damaged
/// (truncated, extended, or bit-flipped) and must be treated as lost.
pub(crate) fn decode_frame(frame: &Bytes) -> Option<(u64, u64, Bytes)> {
    let b = frame.as_slice();
    if b.len() < HEADER {
        return None;
    }
    let len = u32::from_le_bytes(b[16..20].try_into().unwrap()) as usize;
    if b.len() != HEADER + len {
        return None;
    }
    let stored = u32::from_le_bytes(b[20..24].try_into().unwrap());
    if crc32c_pair(&b[..20], &b[HEADER..]) != stored {
        return None;
    }
    let seq = u64::from_le_bytes(b[..8].try_into().unwrap());
    let tag = u64::from_le_bytes(b[8..16].try_into().unwrap());
    // The payload view shares the frame allocation; the 24-byte header
    // keeps it 8-byte aligned, so typed decoding stays zero-copy.
    Some((seq, tag, frame.slice(HEADER..)))
}

/// Applies a wire-level corruption to a copy of `frame`.
fn corrupt_frame(frame: &Bytes, c: Corruption) -> Bytes {
    let mut v = frame.to_vec();
    match c {
        Corruption::Truncate(entropy) => {
            v.truncate((entropy % v.len().max(1) as u64) as usize);
        }
        Corruption::BitFlip(entropy) => {
            let bit = entropy % (v.len() as u64 * 8);
            v[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
    }
    Bytes::from(v)
}

/// CRC32c (Castagnoli) over two concatenated slices, table-driven.
fn crc32c_pair(a: &[u8], b: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in a.iter().chain(b) {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// CRC32c for one slice (known-answer-tested below).
#[cfg(test)]
fn crc32c(data: &[u8]) -> u32 {
    crc32c_pair(data, &[])
}

const CRC32C_TABLE: [u32; 256] = build_crc32c_table();

const fn build_crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Sender-side retransmit window of one directed link.
#[derive(Debug, Default)]
struct SendWindow {
    /// Sequence number of the next frame sent on this link.
    next_seq: u64,
    /// Unacked frames, ascending by sequence number.
    frames: VecDeque<(u64, Bytes)>,
}

/// The shared reliable-delivery engine of one universe (lives in the
/// [`Fabric`], present only when a [`FaultPlan`] is installed).
pub(crate) struct Transport {
    plan: FaultPlan,
    size: usize,
    /// Per-link retransmit windows, indexed `src * size + dst`.
    windows: Vec<Mutex<SendWindow>>,
    /// Per-link cumulative acks: the receiver's next expected sequence
    /// number, published so the *sender* can prune its window.
    acked: Vec<AtomicU64>,
    /// Frames held back by reorder injection, flushed by the link's
    /// next transmission (or by recovery/finish).
    held: Vec<Mutex<Vec<Bytes>>>,
    /// Per-rank reliability counters (sender-side events land on the
    /// sending rank, receiver-side events on the receiving rank).
    stats: Vec<SharedReliabilityStats>,
    _active: ActiveGuard,
}

impl Transport {
    pub(crate) fn new(size: usize, plan: FaultPlan) -> Self {
        Self {
            plan,
            size,
            windows: (0..size * size).map(|_| Mutex::new(SendWindow::default())).collect(),
            acked: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            held: (0..size * size).map(|_| Mutex::new(Vec::new())).collect(),
            stats: (0..size).map(|_| SharedReliabilityStats::default()).collect(),
            _active: ActiveGuard::new(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn stats(&self, rank: usize) -> ReliabilityStats {
        self.stats[rank].snapshot()
    }

    fn link(&self, src: usize, dst: usize) -> usize {
        src * self.size + dst
    }

    /// Sends one application payload over the chaotic link: frames it,
    /// appends it to the retransmit window (pruning everything the
    /// receiver has acked), and transmits subject to the fault plan.
    pub(crate) fn send(&self, fabric: &Fabric, src: usize, dst: usize, tag: u64, payload: Bytes) {
        let l = self.link(src, dst);
        let (seq, frame) = {
            let mut w = self.windows[l].lock().expect("send window lock");
            let acked = self.acked[l].load(Ordering::Acquire);
            while w.frames.front().is_some_and(|(s, _)| *s < acked) {
                w.frames.pop_front();
            }
            let seq = w.next_seq;
            w.next_seq += 1;
            let frame = encode_frame(seq, tag, &payload);
            w.frames.push_back((seq, frame.clone()));
            (seq, frame)
        };
        self.stats[src].frames_sent.fetch_add(1, Ordering::Relaxed);
        self.transmit(fabric, src, dst, seq, &frame, 0);
    }

    /// Puts one frame on the wire, applying the plan's decision for
    /// `attempt`. Never blocks on the receiver (delivery is a mailbox
    /// push); an injected delay stalls the calling thread only.
    fn transmit(
        &self,
        fabric: &Fabric,
        src: usize,
        dst: usize,
        seq: u64,
        frame: &Bytes,
        attempt: u32,
    ) {
        let d = self.plan.decide(src, dst, seq, attempt);
        let st = &self.stats[src];
        if let Some(delay) = d.delay {
            st.injected_delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        if d.drop {
            st.injected_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let wire = match d.corrupt {
            Some(c) => {
                st.injected_corruptions.fetch_add(1, Ordering::Relaxed);
                corrupt_frame(frame, c)
            }
            None => frame.clone(),
        };
        if d.duplicate {
            st.injected_dups.fetch_add(1, Ordering::Relaxed);
            fabric.deliver(dst, Packet { src, tag: TRANSPORT_TAG, data: wire.clone() });
        }
        if d.reorder {
            st.injected_reorders.fetch_add(1, Ordering::Relaxed);
            self.held[self.link(src, dst)].lock().expect("holdback lock").push(wire);
            return;
        }
        fabric.deliver(dst, Packet { src, tag: TRANSPORT_TAG, data: wire });
        // Any frame held back on this link is now "later than" a newer
        // frame — deliver it out of order, as the injection intended.
        self.flush_held(fabric, src, dst);
    }

    fn flush_held(&self, fabric: &Fabric, src: usize, dst: usize) -> usize {
        let held = {
            let mut h = self.held[self.link(src, dst)].lock().expect("holdback lock");
            std::mem::take(&mut *h)
        };
        let n = held.len();
        for frame in held {
            fabric.deliver(dst, Packet { src, tag: TRANSPORT_TAG, data: frame });
        }
        n
    }

    /// Receiver-driven recovery: re-deliver every unacked frame of
    /// `src → dst` with sequence ≥ `from_seq` (flushing held-back
    /// frames first). Returns how many frames went back on the wire —
    /// zero means the sender has not produced `from_seq` yet, which is
    /// patience territory, not retry territory.
    pub(crate) fn retransmit_from(
        &self,
        fabric: &Fabric,
        src: usize,
        dst: usize,
        from_seq: u64,
        attempt: u32,
    ) -> usize {
        let mut n = self.flush_held(fabric, src, dst);
        let frames: Vec<(u64, Bytes)> = {
            let w = self.windows[self.link(src, dst)].lock().expect("send window lock");
            w.frames.iter().filter(|(s, _)| *s >= from_seq).cloned().collect()
        };
        for (seq, frame) in frames {
            self.stats[src].retransmits.fetch_add(1, Ordering::Relaxed);
            tc_trace::instant_with(tc_trace::names::RETRANSMIT, tc_trace::Category::Comm, || {
                vec![("src", src.into()), ("seq", seq.into()), ("attempt", attempt.into())]
            });
            self.transmit(fabric, src, dst, seq, &frame, attempt);
            n += 1;
        }
        n
    }

    /// Publishes the receiver's cumulative ack for `src → dst`, which
    /// lets the sender prune its retransmit window on its next send.
    pub(crate) fn ack(&self, src: usize, dst: usize, next_seq: u64) {
        self.acked[self.link(src, dst)].store(next_seq, Ordering::Release);
    }

    /// Counts one receiver-driven recovery round on `rank`.
    pub(crate) fn note_nack(&self, rank: usize) {
        self.stats[rank].nacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Delivers every held-back frame originating at `rank` (called
    /// when the rank finishes, so reorder holdbacks cannot outlive
    /// their sender).
    pub(crate) fn flush_rank(&self, fabric: &Fabric, rank: usize) {
        for dst in 0..self.size {
            self.flush_held(fabric, rank, dst);
        }
    }
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transport")
            .field("size", &self.size)
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// Receiver-side state of one inbound link (owned by the receiving
/// rank's [`crate::Comm`], allocated only when a transport exists).
#[derive(Debug)]
pub(crate) struct LinkRx {
    /// Next sequence number this receiver will accept.
    pub next_seq: u64,
    /// Out-of-order frames parked until the gap closes, keyed by seq.
    parked: BTreeMap<u64, (u64, Bytes)>,
    /// Recovery rounds driven for the current gap (reset on progress).
    pub attempts: u32,
    /// When the next recovery round for this link is due.
    pub nack_at: Option<Instant>,
    /// A damaged frame was seen since the last accepted one: evidence
    /// that something is missing even if the parked buffer is empty.
    corrupt_evidence: bool,
}

impl LinkRx {
    fn new() -> Self {
        Self {
            next_seq: 0,
            parked: BTreeMap::new(),
            attempts: 0,
            nack_at: None,
            corrupt_evidence: false,
        }
    }

    /// Whether something is demonstrably missing on this link.
    #[cfg(test)]
    fn has_gap_evidence(&self) -> bool {
        self.corrupt_evidence || !self.parked.is_empty()
    }

    /// A recovery round found nothing at or above `next_seq` in the
    /// retransmit window. Every genuinely missing frame would still be
    /// there (frames are only pruned below the receiver's own ack), so
    /// this proves there is no gap: any corruption seen must have been
    /// a stale duplicate. Reset the budget and re-arm patience.
    pub(crate) fn note_nothing_to_recover(&mut self, rearm: Instant) {
        debug_assert!(self.parked.is_empty(), "parked frames imply unacked window entries");
        self.attempts = 0;
        self.corrupt_evidence = false;
        self.nack_at = Some(rearm);
    }
}

/// All inbound-link state of one receiving rank.
#[derive(Debug)]
pub(crate) struct RxState {
    links: Vec<LinkRx>,
}

impl RxState {
    pub(crate) fn new(size: usize) -> Self {
        Self { links: (0..size).map(|_| LinkRx::new()).collect() }
    }

    pub(crate) fn link(&mut self, src: usize) -> &mut LinkRx {
        &mut self.links[src]
    }

    pub(crate) fn links(&mut self) -> impl Iterator<Item = (usize, &mut LinkRx)> {
        self.links.iter_mut().enumerate()
    }

    /// Ingests one raw frame arriving at `rank`, appending every
    /// application packet it releases (the frame itself plus any parked
    /// successors it unblocks) to `out` in sequence order.
    pub(crate) fn ingest(
        &mut self,
        transport: &Transport,
        rank: usize,
        src: usize,
        frame: &Bytes,
        out: &mut Vec<Packet>,
    ) {
        let st = &transport.stats[rank];
        let link = &mut self.links[src];
        let Some((seq, tag, payload)) = decode_frame(frame) else {
            st.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            tc_trace::instant_with(
                tc_trace::names::FRAME_CORRUPT,
                tc_trace::Category::Comm,
                || vec![("src", src.into()), ("bytes", frame.len().into())],
            );
            link.corrupt_evidence = true;
            // Recover promptly: a damaged frame is hard evidence of a
            // gap, no need to wait out a patience period.
            link.nack_at.get_or_insert_with(Instant::now);
            return;
        };
        if seq < link.next_seq {
            st.dup_frames.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if seq > link.next_seq {
            if link.parked.insert(seq, (tag, payload)).is_some() {
                st.dup_frames.fetch_add(1, Ordering::Relaxed);
            } else {
                st.reordered_frames.fetch_add(1, Ordering::Relaxed);
                st.reorder_depth_max.fetch_max(link.parked.len() as u64, Ordering::Relaxed);
                // Bounded memory: shed the newest frames beyond the
                // cap; retransmission recovers them once the gap
                // closes.
                while link.parked.len() > REORDER_CAP {
                    let last = *link.parked.keys().next_back().expect("non-empty");
                    link.parked.remove(&last);
                }
            }
            link.nack_at.get_or_insert_with(|| Instant::now() + transport.plan.nack_base());
            return;
        }
        // In-order frame: accept it and drain the parked run behind it.
        out.push(Packet { src, tag, data: payload });
        link.next_seq += 1;
        while let Some((tag, payload)) = link.parked.remove(&link.next_seq) {
            out.push(Packet { src, tag, data: payload });
            link.next_seq += 1;
        }
        link.attempts = 0;
        link.nack_at = None;
        link.corrupt_evidence = false;
        transport.ack(src, rank, link.next_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_answer() {
        // The canonical CRC32c check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc_pair_matches_concatenation() {
        let all = b"header and payload".to_vec();
        assert_eq!(crc32c_pair(&all[..6], &all[6..]), crc32c(&all));
    }

    #[test]
    fn frame_roundtrip() {
        let payload = Bytes::from((0u8..200).collect::<Vec<u8>>());
        let f = encode_frame(7, 0x1234, &payload);
        let (seq, tag, p) = decode_frame(&f).expect("valid frame");
        assert_eq!((seq, tag), (7, 0x1234));
        assert_eq!(p, payload);
        // Zero-copy: the payload view aliases the frame allocation and
        // stays 8-byte aligned for typed decoding.
        assert_eq!(p.as_ptr() as usize, f.as_ptr() as usize + HEADER);
        assert_eq!(p.as_ptr() as usize % 8, 0);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = encode_frame(0, 1, &Bytes::new());
        let (seq, tag, p) = decode_frame(&f).expect("valid frame");
        assert_eq!((seq, tag, p.len()), (0, 1, 0));
    }

    #[test]
    fn every_truncation_is_detected() {
        let f = encode_frame(3, 9, &Bytes::from(vec![5u8; 64]));
        for keep in 0..f.len() {
            let cut = Bytes::from(f.as_slice()[..keep].to_vec());
            assert!(decode_frame(&cut).is_none(), "truncation to {keep} bytes undetected");
        }
    }

    #[test]
    fn every_single_bitflip_is_detected() {
        let f = encode_frame(11, 42, &Bytes::from(vec![0xAB; 32]));
        for bit in 0..f.len() * 8 {
            let flipped = corrupt_frame(&f, Corruption::BitFlip(bit as u64));
            assert!(decode_frame(&flipped).is_none(), "bit {bit} flip undetected");
        }
    }

    #[test]
    fn rx_reorders_dedups_and_acks() {
        let plan = FaultPlan::new(0);
        let transport = Transport::new(2, plan);
        let mut rx = RxState::new(2);
        let frame = |seq: u64| encode_frame(seq, 100 + seq, &Bytes::from(vec![seq as u8]));
        let mut out = Vec::new();
        // 2, 0, 2 (dup), 1 → released as 0, 1, 2 exactly once.
        rx.ingest(&transport, 1, 0, &frame(2), &mut out);
        rx.ingest(&transport, 1, 0, &frame(0), &mut out);
        rx.ingest(&transport, 1, 0, &frame(2), &mut out);
        rx.ingest(&transport, 1, 0, &frame(1), &mut out);
        let tags: Vec<u64> = out.iter().map(|p| p.tag).collect();
        assert_eq!(tags, vec![100, 101, 102]);
        let st = transport.stats(1);
        assert_eq!(st.dup_frames, 1);
        assert_eq!(st.reordered_frames, 1);
        assert_eq!(transport.acked[1 /* link 0→1 */].load(Ordering::Relaxed), 3);
        assert!(!rx.link(0).has_gap_evidence());
    }

    #[test]
    fn rx_parks_bounded() {
        let transport = Transport::new(2, FaultPlan::new(0));
        let mut rx = RxState::new(2);
        let mut out = Vec::new();
        for seq in 1..(REORDER_CAP as u64 + 40) {
            let f = encode_frame(seq, seq, &Bytes::new());
            rx.ingest(&transport, 1, 0, &f, &mut out);
        }
        assert!(out.is_empty(), "gap at 0 never closed");
        assert!(rx.link(0).parked.len() <= REORDER_CAP);
        assert!(rx.link(0).has_gap_evidence());
    }

    #[test]
    fn corrupt_frame_flags_gap_evidence() {
        let transport = Transport::new(2, FaultPlan::new(0));
        let mut rx = RxState::new(2);
        let mut out = Vec::new();
        let f = encode_frame(0, 7, &Bytes::from(vec![1, 2, 3]));
        rx.ingest(&transport, 1, 0, &corrupt_frame(&f, Corruption::BitFlip(13)), &mut out);
        assert!(out.is_empty());
        assert!(rx.link(0).has_gap_evidence());
        assert_eq!(transport.stats(1).corrupt_frames, 1);
        // The pristine retransmission still gets through.
        rx.ingest(&transport, 1, 0, &f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(!rx.link(0).has_gap_evidence());
    }
}
