//! Single-allocation ("blob") serialization of multi-array structures.
//!
//! The paper's §5.2 notes that serializing a sparse-matrix block field
//! by field costs measurable time per shift, and instead keeps "all of
//! the information for a sparse matrix as a single blob" from which
//! the individual arrays are carved. This module implements exactly
//! that: a blob is one contiguous buffer holding a tiny header (magic,
//! section count, section byte lengths) followed by the section
//! payloads, each padded to 8 bytes so typed views stay aligned.
//!
//! Encoding allocates once; decoding is zero-copy (sections are
//! sub-slices of the received [`Bytes`] buffer).

use bytes::Bytes;

use crate::pod::{bytes_of, Pod, PodArray};

const MAGIC: u64 = 0x7452_6942_6c6f_6231; // "tRiBblob1"

fn pad8(n: usize) -> usize {
    (n + 7) & !7
}

/// Builds a blob from typed sections with a single allocation.
#[derive(Debug, Default)]
pub struct BlobBuilder<'a> {
    sections: Vec<&'a [u8]>,
}

impl<'a> BlobBuilder<'a> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a typed slice as the next section.
    pub fn push<T: Pod>(&mut self, data: &'a [T]) -> &mut Self {
        self.sections.push(bytes_of(data));
        self
    }

    /// Serializes all sections into one contiguous buffer.
    pub fn finish(&self) -> Bytes {
        let n = self.sections.len();
        let header_len = 8 * (2 + n);
        let total: usize = header_len + self.sections.iter().map(|s| pad8(s.len())).sum::<usize>();
        let mut buf = Vec::<u8>::with_capacity(total);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for s in &self.sections {
            buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
        }
        for s in &self.sections {
            buf.extend_from_slice(s);
            buf.resize(pad8(buf.len()), 0);
        }
        debug_assert_eq!(buf.len(), total);
        Bytes::from(buf)
    }
}

/// Carves a 3-section blob into its raw section buffers without heap
/// allocation.
///
/// [`BlobReader`] builds its section table on the heap; this
/// fixed-arity variant exists for zero-allocation receive paths
/// (borrowed operand views in the shift loop). The returned buffers
/// are refcounted sub-slices of `data`.
///
/// # Panics
///
/// Panics on a malformed buffer or a section count other than 3, like
/// [`BlobReader::new`].
pub fn blob_sections3(data: &Bytes) -> [Bytes; 3] {
    let read_u64 = |at: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[at..at + 8]);
        u64::from_le_bytes(b)
    };
    assert!(data.len() >= 16, "blob shorter than its fixed header");
    assert_eq!(read_u64(0), MAGIC, "blob magic mismatch");
    assert_eq!(read_u64(8), 3, "expected a 3-section blob");
    let header_len = 8 * (2 + 3);
    assert!(data.len() >= header_len, "blob truncated inside section table");
    let mut out = [Bytes::new(), Bytes::new(), Bytes::new()];
    let mut off = header_len;
    for (i, slot) in out.iter_mut().enumerate() {
        let len = read_u64(16 + 8 * i) as usize;
        assert!(off + len <= data.len(), "blob truncated inside section {i}");
        *slot = data.slice(off..off + len);
        off += pad8(len);
    }
    out
}

/// Zero-copy view over a received blob.
#[derive(Debug, Clone)]
pub struct BlobReader {
    data: Bytes,
    /// (offset, byte length) per section.
    sections: Vec<(usize, usize)>,
}

impl BlobReader {
    /// Parses the header of `data`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed buffer (wrong magic, truncated header or
    /// payload) — blobs only travel between ranks of the same process,
    /// so corruption is a logic error, not an I/O condition.
    pub fn new(data: Bytes) -> Self {
        let read_u64 = |at: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[at..at + 8]);
            u64::from_le_bytes(b)
        };
        assert!(data.len() >= 16, "blob shorter than its fixed header");
        assert_eq!(read_u64(0), MAGIC, "blob magic mismatch");
        let n = read_u64(8) as usize;
        let header_len = 8 * (2 + n);
        assert!(data.len() >= header_len, "blob truncated inside section table");
        let mut sections = Vec::with_capacity(n);
        let mut off = header_len;
        for i in 0..n {
            let len = read_u64(16 + 8 * i) as usize;
            assert!(off + len <= data.len(), "blob truncated inside section {i}");
            sections.push((off, len));
            off += pad8(len);
        }
        Self { data, sections }
    }

    /// Number of sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Raw bytes of section `idx` (zero-copy slice of the blob).
    pub fn bytes(&self, idx: usize) -> Bytes {
        let (off, len) = self.sections[idx];
        self.data.slice(off..off + len)
    }

    /// Typed view of section `idx`.
    pub fn typed<T: Pod>(&self, idx: usize) -> PodArray<T> {
        PodArray::new(self.bytes(idx))
    }

    /// Total size of the underlying buffer in bytes.
    pub fn total_len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_three_sections() {
        let a: Vec<u64> = vec![1, 2, 3];
        let b: Vec<u32> = vec![10, 20, 30, 40, 50];
        let c: Vec<u32> = vec![];
        let blob = BlobBuilder::new().push(&a).push(&b).push(&c).finish();
        let r = BlobReader::new(blob);
        assert_eq!(r.num_sections(), 3);
        assert_eq!(r.typed::<u64>(0).as_slice(), a.as_slice());
        assert_eq!(r.typed::<u32>(1).as_slice(), b.as_slice());
        assert!(r.typed::<u32>(2).is_empty());
    }

    #[test]
    fn sections_are_aligned_for_zero_copy() {
        // Odd-length u8 section followed by u64 data still decodes.
        let a: Vec<u8> = vec![1, 2, 3];
        let b: Vec<u64> = vec![0xdead_beef_cafe_f00d];
        let blob = BlobBuilder::new().push(&a).push(&b).finish();
        let r = BlobReader::new(blob);
        assert_eq!(r.typed::<u8>(0).as_slice(), a.as_slice());
        assert_eq!(r.typed::<u64>(1).as_slice(), b.as_slice());
    }

    #[test]
    fn sections3_agrees_with_reader() {
        let a: Vec<u32> = (0..7).collect();
        let b: Vec<u32> = vec![42];
        let c: Vec<u32> = vec![];
        let blob = BlobBuilder::new().push(&a).push(&b).push(&c).finish();
        let r = BlobReader::new(blob.clone());
        let s = blob_sections3(&blob);
        for (i, section) in s.iter().enumerate() {
            assert_eq!(&section[..], &r.bytes(i)[..], "section {i}");
        }
    }

    #[test]
    #[should_panic(expected = "3-section")]
    fn sections3_rejects_other_arity() {
        let a: Vec<u32> = vec![1];
        let blob = BlobBuilder::new().push(&a).finish();
        let _ = blob_sections3(&blob);
    }

    #[test]
    fn empty_blob() {
        let blob = BlobBuilder::new().finish();
        let r = BlobReader::new(blob);
        assert_eq!(r.num_sections(), 0);
    }

    #[test]
    #[should_panic(expected = "magic mismatch")]
    fn rejects_garbage() {
        let _ = BlobReader::new(Bytes::from(vec![0u8; 32]));
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn rejects_truncated_payload() {
        let a: Vec<u64> = vec![1, 2, 3, 4];
        let blob = BlobBuilder::new().push(&a).finish();
        let cut = blob.slice(0..blob.len() - 8);
        let _ = BlobReader::new(cut);
    }

    #[test]
    fn single_allocation_estimate_matches() {
        let a: Vec<u32> = (0..1000).collect();
        let blob = BlobBuilder::new().push(&a).finish();
        // header (2+1)*8 + padded payload 4000
        assert_eq!(blob.len(), 24 + 4000);
    }
}
