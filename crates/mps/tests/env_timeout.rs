//! Strict parsing of the `MPS_*` environment family
//! (`MPS_RECV_TIMEOUT_MS` and every `MPS_CHAOS_*` knob): valid values
//! configure, garbage panics loudly at universe construction naming
//! the offending variable.
//!
//! These tests mutate the process environment, so they live in their
//! own integration-test binary (cargo runs each test binary in its own
//! process) and are serialized behind one lock — they must never share
//! a process with tests that construct default-configured universes.

use std::sync::Mutex;
use std::time::Duration;

use tc_mps::{
    FaultPlan, Universe, UniverseConfig, CHAOS_DROP_ENV, CHAOS_ENV_VARS, CHAOS_LINKS_ENV,
    CHAOS_MAX_RETRIES_ENV, CHAOS_SEED_ENV, RECV_TIMEOUT_ENV,
};

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the given `(name, value)` pairs set (and every other
/// variable of the `MPS_*` family unset), restoring the previous state
/// afterwards.
fn with_vars<R>(vars: &[(&str, &str)], f: impl FnOnce() -> R) -> R {
    let _g = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let all: Vec<&str> =
        CHAOS_ENV_VARS.iter().copied().chain(std::iter::once(RECV_TIMEOUT_ENV)).collect();
    let prev: Vec<(&str, Option<String>)> =
        all.iter().map(|n| (*n, std::env::var(n).ok())).collect();
    // The lock serializes all mutation of these variables within this
    // test binary; no other thread reads the environment here.
    for n in &all {
        std::env::remove_var(n);
    }
    for (n, v) in vars {
        std::env::set_var(n, v);
    }
    let out = f();
    for (n, v) in prev {
        match v {
            Some(v) => std::env::set_var(n, v),
            None => std::env::remove_var(n),
        }
    }
    out
}

fn with_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    match value {
        Some(v) => with_vars(&[(RECV_TIMEOUT_ENV, v)], f),
        None => with_vars(&[], f),
    }
}

/// Extracts the panic message of a caught unwind payload.
fn panic_msg(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn valid_env_value_is_used() {
    with_env(Some("1234"), || {
        let cfg = UniverseConfig::default();
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_millis(1234));
    });
}

#[test]
fn env_value_is_trimmed() {
    with_env(Some(" 500 \n"), || {
        let cfg = UniverseConfig::default();
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_millis(500));
    });
}

#[test]
fn missing_env_falls_back_to_default() {
    with_env(None, || {
        let cfg = UniverseConfig::default();
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_secs(60));
    });
}

#[test]
fn explicit_timeout_ignores_env() {
    with_env(Some("not-a-number"), || {
        let cfg = UniverseConfig::with_timeout(Duration::from_millis(250));
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_millis(250));
    });
}

#[test]
fn garbage_env_value_panics_loudly_at_universe_construction() {
    with_env(Some("sixty-seconds"), || {
        let err = std::panic::catch_unwind(|| {
            let _ = Universe::try_run_with_stats(1, |c| Ok(c.rank()));
        })
        .expect_err("universe construction must panic on unparseable timeout");
        let msg = panic_msg(err);
        assert!(msg.contains(RECV_TIMEOUT_ENV), "panic names the variable: {msg}");
        assert!(msg.contains("sixty-seconds"), "panic echoes the bad value: {msg}");
    });
}

#[test]
fn negative_and_overflow_values_panic() {
    for bad in ["-5", "1e9", "18446744073709551616"] {
        with_env(Some(bad), || {
            let r = std::panic::catch_unwind(|| UniverseConfig::default().effective_recv_timeout());
            assert!(r.is_err(), "{bad:?} must be rejected");
        });
    }
}

#[test]
fn no_chaos_vars_means_no_plan() {
    with_vars(&[], || {
        assert!(FaultPlan::from_env().is_none());
        assert!(UniverseConfig::default().effective_chaos().is_none());
    });
}

#[test]
fn chaos_env_builds_a_plan() {
    with_vars(
        &[
            (CHAOS_SEED_ENV, "77"),
            (CHAOS_DROP_ENV, "0.25"),
            (CHAOS_MAX_RETRIES_ENV, "9"),
            (CHAOS_LINKS_ENV, "0->1, 2->3"),
        ],
        || {
            let plan = FaultPlan::from_env().expect("set vars activate a plan");
            assert_eq!(plan.seed(), 77);
            assert_eq!(plan.max_retries(), 9);
            assert_eq!(plan.faults_for(0, 1).drop, 0.25);
            assert_eq!(plan.faults_for(2, 3).drop, 0.25);
            assert!(plan.faults_for(1, 0).is_none(), "unlisted link stays healthy");
        },
    );
}

#[test]
fn chaos_env_actually_runs_the_transport() {
    with_vars(&[(CHAOS_SEED_ENV, "3")], || {
        let out = Universe::try_run(2, |c| {
            let peer = 1 - c.rank();
            c.send_val::<u64>(peer, 1, c.rank() as u64);
            c.recv_val::<u64>(peer, 1)?;
            Ok(c.reliability_stats().is_some())
        })
        .expect("env-configured chaos run");
        assert_eq!(out, vec![true, true], "transport must be live");
    });
}

#[test]
fn explicit_plan_overrides_env() {
    with_vars(&[(CHAOS_DROP_ENV, "not-a-probability")], || {
        // An explicit plan short-circuits env parsing entirely.
        let cfg = UniverseConfig { chaos: Some(FaultPlan::new(1)), ..UniverseConfig::default() };
        assert_eq!(cfg.effective_chaos().expect("explicit plan").seed(), 1);
    });
}

#[test]
fn every_chaos_var_rejects_garbage_loudly() {
    let garbage: &[(&str, &str)] = &[
        (CHAOS_SEED_ENV, "lucky"),
        (CHAOS_DROP_ENV, "often"),
        ("MPS_CHAOS_DUPLICATE", "1.5"),
        ("MPS_CHAOS_REORDER", "-0.1"),
        ("MPS_CHAOS_DELAY", "NaN"),
        ("MPS_CHAOS_TRUNCATE", "yes"),
        ("MPS_CHAOS_BITFLIP", "inf"),
        ("MPS_CHAOS_DELAY_MAX_US", "0"),
        (CHAOS_MAX_RETRIES_ENV, "-1"),
        (CHAOS_LINKS_ENV, "0->1,zap"),
    ];
    for (name, value) in garbage {
        with_vars(&[(name, value)], || {
            let err = match std::panic::catch_unwind(|| {
                let _ = Universe::try_run_with_stats(1, |c| Ok(c.rank()));
            }) {
                Ok(_) => panic!("{name}={value:?} must panic at construction"),
                Err(e) => e,
            };
            let msg = panic_msg(err);
            assert!(msg.contains(name), "panic names {name}: {msg}");
        });
    }
}
