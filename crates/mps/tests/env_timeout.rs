//! Strict parsing of `MPS_RECV_TIMEOUT_MS`.
//!
//! These tests mutate the process environment, so they live in their
//! own integration-test binary (cargo runs each test binary in its own
//! process) and are serialized behind one lock — they must never share
//! a process with tests that construct default-configured universes.

use std::sync::Mutex;
use std::time::Duration;

use tc_mps::{Universe, UniverseConfig, RECV_TIMEOUT_ENV};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let _g = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prev = std::env::var(RECV_TIMEOUT_ENV).ok();
    // The lock serializes all mutation of this variable within this
    // test binary; no other thread reads the environment here.
    match value {
        Some(v) => std::env::set_var(RECV_TIMEOUT_ENV, v),
        None => std::env::remove_var(RECV_TIMEOUT_ENV),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var(RECV_TIMEOUT_ENV, v),
        None => std::env::remove_var(RECV_TIMEOUT_ENV),
    }
    out
}

#[test]
fn valid_env_value_is_used() {
    with_env(Some("1234"), || {
        let cfg = UniverseConfig::default();
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_millis(1234));
    });
}

#[test]
fn env_value_is_trimmed() {
    with_env(Some(" 500 \n"), || {
        let cfg = UniverseConfig::default();
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_millis(500));
    });
}

#[test]
fn missing_env_falls_back_to_default() {
    with_env(None, || {
        let cfg = UniverseConfig::default();
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_secs(60));
    });
}

#[test]
fn explicit_timeout_ignores_env() {
    with_env(Some("not-a-number"), || {
        let cfg = UniverseConfig::with_timeout(Duration::from_millis(250));
        assert_eq!(cfg.effective_recv_timeout(), Duration::from_millis(250));
    });
}

#[test]
fn garbage_env_value_panics_loudly_at_universe_construction() {
    with_env(Some("sixty-seconds"), || {
        let err = std::panic::catch_unwind(|| {
            let _ = Universe::try_run_with_stats(1, |c| Ok(c.rank()));
        })
        .expect_err("universe construction must panic on unparseable timeout");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains(RECV_TIMEOUT_ENV), "panic names the variable: {msg}");
        assert!(msg.contains("sixty-seconds"), "panic echoes the bad value: {msg}");
    });
}

#[test]
fn negative_and_overflow_values_panic() {
    for bad in ["-5", "1e9", "18446744073709551616"] {
        with_env(Some(bad), || {
            let r = std::panic::catch_unwind(|| UniverseConfig::default().effective_recv_timeout());
            assert!(r.is_err(), "{bad:?} must be rejected");
        });
    }
}
