//! End-to-end tests of the chaotic fabric: the reliable-delivery
//! transport must mask every injected fault mode (delay, drop,
//! duplicate, reorder, truncate, bit-flip) transparently — same
//! results, same logical communication counters as a clean run — and
//! must keep every un-hangable guarantee of the runtime while doing it.

use std::time::Duration;

use tc_mps::{FaultKind, FaultPlan, LinkFaults, MpsError, Universe, UniverseConfig};

/// A config with `plan` installed and a deadline short enough for CI.
fn chaos_cfg(plan: FaultPlan) -> UniverseConfig {
    UniverseConfig {
        recv_timeout: Some(Duration::from_secs(30)),
        chaos: Some(plan),
        ..UniverseConfig::default()
    }
}

/// Ring exchange + allreduce + alltoallv-style manual exchange: the
/// mixed point-to-point/collective workload every mode test runs.
fn workload(c: &tc_mps::Comm) -> Result<u64, MpsError> {
    let p = c.size();
    let next = (c.rank() + 1) % p;
    let prev = (c.rank() + p - 1) % p;
    // Pipelined ring traffic: enough frames in flight for reordering
    // and duplication to actually interleave.
    for round in 0..20u64 {
        c.send_val::<u64>(next, round, c.rank() as u64 * 1000 + round);
    }
    let mut acc = 0u64;
    for round in 0..20u64 {
        let v = c.recv_val::<u64>(prev, round)?;
        assert_eq!(v, prev as u64 * 1000 + round);
        acc += v;
    }
    // Collectives must cross the same transport.
    let total = c.allreduce_sum_u64(c.rank() as u64)?;
    assert_eq!(total, (p * (p - 1) / 2) as u64);
    c.barrier()?;
    // All-to-all point-to-point fan: stresses every directed link.
    for d in 0..p {
        c.send_val::<u64>(d, 100 + c.rank() as u64, (c.rank() * p + d) as u64);
    }
    for s in 0..p {
        let v = c.recv_val::<u64>(s, 100 + s as u64)?;
        assert_eq!(v, (s * p + c.rank()) as u64);
        acc += v;
    }
    Ok(acc + total)
}

#[test]
fn every_fault_mode_is_masked_across_seeds() {
    let p = 8;
    let clean = Universe::try_run(p, workload).expect("clean run");
    for kind in FaultKind::ALL {
        // Probabilities high enough to fire constantly, low enough for
        // p < 1 convergence.
        let prob = match kind {
            FaultKind::Drop => 0.25,
            _ => 0.35,
        };
        for seed in [1u64, 2, 3, 4, 5] {
            let mut faults = LinkFaults::only(kind, prob);
            faults.delay_max = Duration::from_micros(50);
            let plan = FaultPlan::new(seed).with_default(faults);
            let cfg = chaos_cfg(plan);
            let out = Universe::try_run_config(p, &cfg, workload)
                .unwrap_or_else(|e| panic!("mode {} seed {seed}: {e}", kind.name()));
            assert_eq!(out.0, clean, "mode {} seed {seed}", kind.name());
        }
    }
}

#[test]
fn all_modes_at_once_with_logical_stats_identical_to_clean() {
    let p = 8;
    let (clean_out, clean_stats) = Universe::try_run_with_stats(p, workload).expect("clean");
    let cfg = chaos_cfg(FaultPlan::uniform(0xDECAF, 0.15).with_default(LinkFaults {
        delay_max: Duration::from_micros(50),
        ..LinkFaults::uniform(0.15)
    }));
    let (out, stats) = Universe::try_run_config(p, &cfg, workload).expect("chaotic");
    assert_eq!(out, clean_out);
    // The transport is invisible to the logical counters: same
    // messages, same payload bytes, regardless of what the wire did.
    for (rank, (c, ch)) in clean_stats.iter().zip(&stats).enumerate() {
        assert_eq!(c.msgs_sent, ch.msgs_sent, "rank {rank}");
        assert_eq!(c.bytes_sent, ch.bytes_sent, "rank {rank}");
        assert_eq!(c.msgs_recv, ch.msgs_recv, "rank {rank}");
        assert_eq!(c.bytes_recv, ch.bytes_recv, "rank {rank}");
    }
}

#[test]
fn reliability_stats_surface_injected_faults() {
    let p = 4;
    let cfg = chaos_cfg(FaultPlan::uniform(7, 0.3).with_default(LinkFaults {
        delay_max: Duration::from_micros(20),
        ..LinkFaults::uniform(0.3)
    }));
    let totals = Universe::try_run_config(p, &cfg, |c| {
        workload(c)?;
        Ok(c.reliability_stats().expect("transport is live"))
    })
    .expect("chaotic run")
    .0
    .into_iter()
    .fold(tc_mps::ReliabilityStats::default(), |mut acc, s| {
        acc.merge(&s);
        acc
    });
    assert!(totals.frames_sent > 0);
    assert!(totals.injected_drops > 0, "{totals:?}");
    assert!(totals.injected_dups > 0, "{totals:?}");
    assert!(totals.injected_reorders > 0, "{totals:?}");
    assert!(totals.injected_corruptions > 0, "{totals:?}");
    assert!(totals.retransmits > 0, "drops must be repaired: {totals:?}");
    assert!(totals.corrupt_frames > 0, "corruptions must be caught: {totals:?}");
}

#[test]
fn chaos_off_reports_no_reliability_stats() {
    let out = Universe::try_run(3, |c| Ok(c.reliability_stats())).expect("clean");
    assert!(out.iter().all(Option::is_none), "no transport without a plan");
}

#[test]
fn unrecoverable_link_fails_typed_not_hanging() {
    // Rank 0 → rank 1 drops every frame, original and retransmit: no
    // retry budget can mask it. The receive must fail with
    // DeliveryFailed naming the link, within the deadline.
    let plan = FaultPlan::new(99)
        .with_default(LinkFaults::none())
        .with_link(0, 1, LinkFaults::only(FaultKind::Drop, 1.0))
        .with_max_retries(4)
        .with_nack_backoff(Duration::from_millis(1), Duration::from_millis(5));
    let cfg = chaos_cfg(plan);
    let t0 = std::time::Instant::now();
    let err = Universe::try_run_config(4, &cfg, |c| {
        if c.rank() == 0 {
            c.send_val::<u64>(1, 5, 42);
        }
        if c.rank() == 1 {
            c.recv_val::<u64>(0, 5)?;
        }
        c.barrier()
    })
    .expect_err("the dead link must surface");
    assert!(t0.elapsed() < Duration::from_secs(20), "failed fast, not by timeout");
    match err {
        MpsError::DeliveryFailed { src, dst, seq, attempts } => {
            assert_eq!((src, dst, seq), (0, 1, 0));
            assert!(attempts >= 4, "budget exhausted: {attempts}");
        }
        // Rank 1's failure may reach the joiner as a peer's view of it.
        MpsError::PeerFailed { msg, .. } => {
            assert!(msg.contains("delivery from rank 0 failed"), "{msg}");
        }
        other => panic!("expected DeliveryFailed, got {other}"),
    }
}

#[test]
fn every_rank_unblocks_after_delivery_failure() {
    // All peers sit in a barrier while the dead link is discovered;
    // each rank must come back with a typed error, not hang.
    let plan = FaultPlan::new(5)
        .with_default(LinkFaults::none())
        .with_link(2, 3, LinkFaults::only(FaultKind::Drop, 1.0))
        .with_max_retries(3)
        .with_nack_backoff(Duration::from_millis(1), Duration::from_millis(4));
    let cfg = chaos_cfg(plan);
    let outcomes = std::sync::Mutex::new(Vec::new());
    let _ = Universe::try_run_config(8, &cfg, |c| {
        if c.rank() == 2 {
            c.send_val::<u64>(3, 9, 1);
        }
        let r: Result<(), MpsError> =
            if c.rank() == 3 { c.recv_val::<u64>(2, 9).map(|_| ()) } else { c.barrier() };
        outcomes.lock().unwrap().push((c.rank(), r.is_err()));
        r
    });
    let seen = outcomes.into_inner().unwrap();
    assert_eq!(seen.len(), 8, "every rank returned");
    assert!(seen.iter().all(|(_, is_err)| *is_err), "every rank observed the failure: {seen:?}");
}

#[test]
fn peer_panic_propagates_under_chaos() {
    let cfg = chaos_cfg(FaultPlan::uniform(21, 0.2).with_default(LinkFaults {
        delay_max: Duration::from_micros(20),
        ..LinkFaults::uniform(0.2)
    }));
    let err = Universe::try_run_config(4, &cfg, |c| {
        if c.rank() == 2 {
            panic!("chaotic casualty");
        }
        c.barrier()
    })
    .expect_err("panic must surface");
    match err {
        MpsError::PeerFailed { rank, msg } => {
            assert_eq!(rank, 2);
            assert!(msg.contains("chaotic casualty"), "{msg}");
        }
        other => panic!("expected PeerFailed, got {other}"),
    }
}

#[test]
fn collective_mismatch_detected_under_chaos() {
    let cfg = chaos_cfg(FaultPlan::new(17)); // transport on, no faults
    let err = Universe::try_run_config(2, &cfg, |c| {
        if c.rank() == 0 {
            c.barrier()
        } else {
            c.allreduce_sum_u64(1).map(|_| ())
        }
    })
    .expect_err("crossed collectives must be caught");
    let all = err.to_string();
    assert!(
        all.contains("mismatch") || all.contains("failed"),
        "typed cross-collective failure, got: {all}"
    );
}

#[test]
fn nonblocking_requests_survive_chaos() {
    let p = 6;
    let cfg = chaos_cfg(FaultPlan::uniform(31, 0.25).with_default(LinkFaults {
        delay_max: Duration::from_micros(30),
        ..LinkFaults::uniform(0.25)
    }));
    let out = Universe::try_run_config(p, &cfg, |c| {
        let next = (c.rank() + 1) % p;
        let prev = (c.rank() + p - 1) % p;
        let sends: Vec<_> = (0..10u64)
            .map(|i| c.isend_bytes(next, i, bytes::Bytes::from(vec![i as u8; 128])))
            .collect();
        let recvs: Vec<_> = (0..10u64).map(|i| c.irecv_bytes(prev, i)).collect();
        let bufs = tc_mps::waitall(recvs)?;
        for s in sends {
            s.wait()?;
        }
        Ok(bufs.iter().map(|b| b.len()).sum::<usize>())
    })
    .expect("chaotic nonblocking run")
    .0;
    assert!(out.iter().all(|n| *n == 1280));
}

#[test]
fn grid_shifts_work_under_chaos() {
    let p = 16;
    let cfg = chaos_cfg(FaultPlan::uniform(13, 0.2).with_default(LinkFaults {
        delay_max: Duration::from_micros(20),
        ..LinkFaults::uniform(0.2)
    }));
    let out = Universe::try_run_config(p, &cfg, |c| {
        let grid = tc_mps::Grid::new(c);
        let mut val = vec![c.rank() as u64];
        // A full row rotation returns every payload home.
        for _ in 0..grid.q() {
            let bytes =
                grid.shift_left(bytes::Bytes::from(tc_mps::pod::bytes_of(&val).to_vec()))?;
            val = tc_mps::pod::vec_from_bytes::<u64>(bytes.as_slice());
        }
        Ok(val[0])
    })
    .expect("chaotic grid run")
    .0;
    for (rank, v) in out.iter().enumerate() {
        assert_eq!(*v, rank as u64, "row rotation must return home");
    }
}

#[test]
fn same_seed_same_injection_counts() {
    let p = 4;
    let run = || {
        let cfg = chaos_cfg(FaultPlan::uniform(0xFEED, 0.3).with_default(LinkFaults {
            delay_max: Duration::from_micros(10),
            ..LinkFaults::uniform(0.3)
        }));
        Universe::try_run_config(p, &cfg, |c| {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            for i in 0..50u64 {
                c.send_val::<u64>(next, i, i);
            }
            for i in 0..50u64 {
                c.recv_val::<u64>(prev, i)?;
            }
            Ok(c.reliability_stats().unwrap())
        })
        .expect("chaotic run")
        .0
    };
    let (a, b) = (run(), run());
    // Send-side decisions depend only on (seed, link, seq, attempt=0),
    // so first-transmission injection counts replay exactly.
    let first_tx = |stats: &[tc_mps::ReliabilityStats]| -> (u64, u64) {
        let dups: u64 = stats.iter().map(|s| s.injected_dups).sum();
        let reorders: u64 = stats.iter().map(|s| s.injected_reorders).sum();
        (dups, reorders)
    };
    assert_eq!(first_tx(&a), first_tx(&b), "seeded injections replay");
}
