//! End-to-end tests of the multi-process socket fabric backend.
//!
//! Each test stands in for a process mesh with one thread per rank,
//! every rank holding its own [`tc_mps::SocketConfig`] and talking to
//! its peers exclusively through real Unix-domain (or TCP) sockets —
//! no shared memory beyond the test harness collecting results. The
//! same workloads the in-process backend runs must produce identical
//! values, identical logical communication counters, and the same
//! typed failures.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use tc_mps::{CommStats, FaultPlan, MpsError, MpsResult, SocketConfig, Universe, UniverseConfig};

static NEXT_MESH: AtomicUsize = AtomicUsize::new(0);

/// One endpoint per rank in a fresh, collision-free namespace. Unix
/// socket paths must stay short (the kernel caps `sun_path` around
/// 108 bytes), so the names are deliberately terse.
fn unix_endpoints(p: usize) -> Vec<String> {
    let mesh = NEXT_MESH.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    (0..p)
        .map(|r| {
            std::env::temp_dir()
                .join(format!("tcm-{pid}-{mesh}-{r}.sock"))
                .to_string_lossy()
                .into_owned()
        })
        .collect()
}

/// Runs `f` as a `p`-rank socket universe, one thread per rank, and
/// returns every rank's result.
fn run_mesh<T, F>(
    peers: Vec<String>,
    cfg: impl Fn(usize) -> SocketConfig + Sync,
    f: F,
) -> Vec<MpsResult<(T, CommStats)>>
where
    T: Send,
    F: Fn(&tc_mps::Comm) -> MpsResult<T> + Sync,
{
    let p = peers.len();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let cfg = &cfg;
                let f = &f;
                s.spawn(move || Universe::try_run_socket(&cfg(rank), f))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    })
}

fn short_timeout() -> UniverseConfig {
    UniverseConfig { recv_timeout: Some(Duration::from_secs(30)), ..UniverseConfig::default() }
}

/// The mixed point-to-point/collective workload from the chaos suite:
/// pipelined ring traffic, an allreduce, a barrier, and an all-to-all
/// fan that exercises every directed link (self included).
fn workload(c: &tc_mps::Comm) -> Result<u64, MpsError> {
    let p = c.size();
    let next = (c.rank() + 1) % p;
    let prev = (c.rank() + p - 1) % p;
    for round in 0..20u64 {
        c.send_val::<u64>(next, round, c.rank() as u64 * 1000 + round);
    }
    let mut acc = 0u64;
    for round in 0..20u64 {
        let v = c.recv_val::<u64>(prev, round)?;
        assert_eq!(v, prev as u64 * 1000 + round);
        acc += v;
    }
    let total = c.allreduce_sum_u64(c.rank() as u64)?;
    assert_eq!(total, (p * (p - 1) / 2) as u64);
    c.barrier()?;
    for d in 0..p {
        c.send_val::<u64>(d, 100 + c.rank() as u64, (c.rank() * p + d) as u64);
    }
    for s in 0..p {
        let v = c.recv_val::<u64>(s, 100 + s as u64)?;
        assert_eq!(v, (s * p + c.rank()) as u64);
        acc += v;
    }
    Ok(acc + total)
}

#[test]
fn unix_mesh_matches_in_process_results() {
    let p = 4;
    let in_process = Universe::try_run(p, workload).expect("in-process run");
    let peers = unix_endpoints(p);
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig { universe: short_timeout(), ..SocketConfig::new(rank, peers.clone()) },
        workload,
    );
    for (rank, res) in results.into_iter().enumerate() {
        let (value, _stats) = res.unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        assert_eq!(value, in_process[rank], "rank {rank} diverged from the in-process backend");
    }
}

#[test]
fn backend_name_is_socket() {
    let peers = unix_endpoints(2);
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig { universe: short_timeout(), ..SocketConfig::new(rank, peers.clone()) },
        |c| {
            assert_eq!(c.backend(), "socket");
            c.barrier()?;
            Ok(())
        },
    );
    assert!(results.into_iter().all(|r| r.is_ok()));
}

#[test]
fn tag_matching_is_out_of_order_across_the_wire() {
    let peers = unix_endpoints(2);
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig { universe: short_timeout(), ..SocketConfig::new(rank, peers.clone()) },
        |c| {
            let other = 1 - c.rank();
            // Send tags in one order, receive them in the other: matching
            // must hold even though the wire delivers strictly in order.
            c.send_val::<u64>(other, 7, 70);
            c.send_val::<u64>(other, 8, 80);
            let hi = c.recv_val::<u64>(other, 8)?;
            let lo = c.recv_val::<u64>(other, 7)?;
            Ok((lo, hi))
        },
    );
    for res in results {
        assert_eq!(res.unwrap().0, (70, 80));
    }
}

#[test]
fn sixteen_ranks_over_unix_sockets() {
    let p = 16;
    let in_process = Universe::try_run(p, workload).expect("in-process run");
    let peers = unix_endpoints(p);
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig { universe: short_timeout(), ..SocketConfig::new(rank, peers.clone()) },
        workload,
    );
    for (rank, res) in results.into_iter().enumerate() {
        let (value, stats) = res.unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        assert_eq!(value, in_process[rank]);
        assert!(stats.msgs_sent > 0 && stats.msgs_recv > 0);
    }
}

#[test]
fn tcp_mesh_smoke() {
    // Discover two free ports, then hand them to the mesh. The gap
    // between dropping the probe listener and the fabric rebinding is
    // a real (tiny) race; an occupied port fails loudly, not silently.
    let peers: Vec<String> = (0..2)
        .map(|_| {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
            let addr = probe.local_addr().expect("probe addr");
            format!("127.0.0.1:{}", addr.port())
        })
        .collect();
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig { universe: short_timeout(), ..SocketConfig::new(rank, peers.clone()) },
        workload,
    );
    let in_process = Universe::try_run(2, workload).expect("in-process run");
    for (rank, res) in results.into_iter().enumerate() {
        assert_eq!(res.unwrap_or_else(|e| panic!("rank {rank}: {e}")).0, in_process[rank]);
    }
}

#[test]
fn rank_error_fails_every_peer() {
    let p = 4;
    let peers = unix_endpoints(p);
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig { universe: short_timeout(), ..SocketConfig::new(rank, peers.clone()) },
        |c| -> MpsResult<u64> {
            if c.rank() == 2 {
                return Err(MpsError::Protocol { rank: 2, msg: "synthetic failure".into() });
            }
            // Everyone else blocks on traffic that will never come; the
            // relayed failure must wake them with a typed error, not a
            // deadline expiry.
            let v = c.recv_val::<u64>(2, 42)?;
            Ok(v)
        },
    );
    for (rank, res) in results.into_iter().enumerate() {
        let err = res.expect_err("every rank must observe the failure");
        match (rank, err) {
            (2, MpsError::Protocol { rank: 2, .. }) => {}
            (_, MpsError::PeerFailed { .. } | MpsError::Protocol { .. }) => {}
            (r, other) => panic!("rank {r}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn epoch_mismatch_is_rejected_at_handshake() {
    let peers = unix_endpoints(2);
    let results = run_mesh(
        peers.clone(),
        |rank| SocketConfig {
            epoch: rank as u64, // ranks disagree on the launch epoch
            universe: short_timeout(),
            ..SocketConfig::new(rank, peers.clone())
        },
        |c| {
            c.barrier()?;
            Ok(())
        },
    );
    for res in results {
        assert!(
            matches!(res, Err(MpsError::Protocol { .. })),
            "a cross-epoch connection must be refused before any traffic"
        );
    }
}

#[test]
fn chaos_over_sockets_is_masked() {
    let p = 4;
    let clean = Universe::try_run(p, workload).expect("clean run");
    for seed in [1u64, 7, 42] {
        let peers = unix_endpoints(p);
        let results = run_mesh(
            peers.clone(),
            |rank| SocketConfig {
                universe: UniverseConfig {
                    recv_timeout: Some(Duration::from_secs(30)),
                    chaos: Some(FaultPlan::uniform(seed, 0.05)),
                    ..UniverseConfig::default()
                },
                ..SocketConfig::new(rank, peers.clone())
            },
            workload,
        );
        for (rank, res) in results.into_iter().enumerate() {
            let (value, _) = res.unwrap_or_else(|e| panic!("seed {seed} rank {rank}: {e}"));
            assert_eq!(value, clean[rank], "seed {seed}: chaos changed rank {rank}'s result");
        }
    }
}

#[test]
fn socket_config_from_env_roundtrip() {
    // This is the only test in the binary that touches these env vars,
    // and no other test reads them, so no cross-test race.
    assert!(SocketConfig::from_env().is_none(), "unset env must mean no socket config");
    std::env::set_var(tc_mps::FABRIC_RANK_ENV, "1");
    std::env::set_var(tc_mps::FABRIC_PEERS_ENV, " /tmp/a.sock , /tmp/b.sock ,/tmp/c.sock");
    std::env::set_var(tc_mps::FABRIC_EPOCH_ENV, "9");
    let cfg = SocketConfig::from_env().expect("both required vars are set");
    assert_eq!(cfg.rank, 1);
    assert_eq!(cfg.peers, vec!["/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"]);
    assert_eq!(cfg.epoch, 9);
    std::env::remove_var(tc_mps::FABRIC_RANK_ENV);
    std::env::remove_var(tc_mps::FABRIC_PEERS_ENV);
    std::env::remove_var(tc_mps::FABRIC_EPOCH_ENV);
}

/// Regression: a dialer that connects and then says nothing must not
/// wedge the accept loop. Rank 0 gets a silent connection strictly
/// before the real peer dials (rank 1 is held back until the saboteur
/// owns a connection, so the race is deterministic); with a
/// per-connection handshake deadline the saboteur is dropped and the
/// mesh still forms.
#[test]
fn stalled_dialer_cannot_wedge_the_accept_loop() {
    let peers = unix_endpoints(2);
    let ep0 = peers[0].clone();
    let saboteur_in = std::sync::atomic::AtomicBool::new(false);
    let cfg = |rank: usize| {
        let mut cfg = SocketConfig::new(rank, peers.clone());
        cfg.universe = short_timeout();
        cfg.handshake_timeout = Some(Duration::from_millis(200));
        cfg
    };
    let results = std::thread::scope(|s| {
        let rank0 = s.spawn(|| Universe::try_run_socket(&cfg(0), workload));
        // The saboteur: connect to rank 0 the moment it binds, then
        // hold the socket open without a single handshake byte.
        let saboteur_in = &saboteur_in;
        let saboteur = s.spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                match std::os::unix::net::UnixStream::connect(&ep0) {
                    Ok(stream) => {
                        saboteur_in.store(true, Ordering::SeqCst);
                        // Outlive the 200 ms handshake budget by far.
                        std::thread::sleep(Duration::from_millis(1200));
                        drop(stream);
                        return true;
                    }
                    Err(_) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => return false,
                }
            }
        });
        let rank1 = s.spawn(|| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !saboteur_in.load(Ordering::SeqCst) {
                assert!(std::time::Instant::now() < deadline, "saboteur never connected");
                std::thread::sleep(Duration::from_millis(1));
            }
            Universe::try_run_socket(&cfg(1), workload)
        });
        assert!(saboteur.join().expect("saboteur thread"), "saboteur never got a connection");
        vec![rank0.join().expect("rank 0 thread"), rank1.join().expect("rank 1 thread")]
    });
    let in_process = Universe::try_run(2, workload).expect("in-process reference");
    for (rank, res) in results.into_iter().enumerate() {
        let (value, _stats) = res.unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
        assert_eq!(value, in_process[rank], "rank {rank} workload value");
    }
}
