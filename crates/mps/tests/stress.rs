//! Stress and soak tests of the message-passing substrate: message
//! storms, interleaved collectives, large payloads, and adversarial
//! orderings. These guard the properties the algorithms lean on —
//! FIFO per (source, tag), exact tag matching, and collective
//! isolation.

use tc_mps::{Universe, MAX_USER_TAG};

#[test]
fn message_storm_all_pairs() {
    // Every rank sends 200 messages to every rank (itself included),
    // interleaved tags; receivers drain in a different order.
    let p = 8;
    let per_pair = 200u32;
    let out = Universe::run(p, |c| {
        for dst in 0..p {
            for m in 0..per_pair {
                let tag = (m % 3) as u64;
                c.send_val::<u64>(dst, tag, ((c.rank() as u64) << 32) | m as u64);
            }
        }
        // Drain: per source, per tag, messages must arrive FIFO.
        let mut total = 0u64;
        for src in (0..p).rev() {
            for tag in 0..3u64 {
                let expect_count = per_pair / 3 + u32::from(per_pair % 3 > tag as u32);
                let mut last = None;
                for _ in 0..expect_count {
                    let v = c.recv_val::<u64>(src, tag).unwrap();
                    assert_eq!(v >> 32, src as u64);
                    let m = v & 0xffff_ffff;
                    assert_eq!(m % 3, tag, "tag mismatch");
                    if let Some(prev) = last {
                        assert!(m > prev, "FIFO violated within (src, tag)");
                    }
                    last = Some(m);
                    total += 1;
                }
            }
        }
        total
    });
    assert!(out.iter().all(|&t| t == (p as u64) * per_pair as u64));
}

#[test]
fn large_payload_integrity() {
    // 8 MiB per message, pattern-checked.
    let out = Universe::run(2, |c| {
        if c.rank() == 0 {
            let data: Vec<u64> = (0..1_000_000u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
            c.send(1, 1, &data);
            0u64
        } else {
            let got = c.recv::<u64>(0, 1).unwrap();
            got.as_slice()
                .iter()
                .enumerate()
                .filter(|&(i, &v)| v != (i as u64).wrapping_mul(0x9e3779b9))
                .count() as u64
        }
    });
    assert_eq!(out[1], 0, "corrupted elements");
}

#[test]
fn interleaved_collective_sequences() {
    // 50 rounds of (alltoallv, allreduce, scan, barrier) with p2p
    // traffic woven through; sequence numbers must keep every round
    // isolated.
    let p = 6;
    let out = Universe::run(p, |c| {
        let mut acc = 0u64;
        for round in 0..50u64 {
            let next = (c.rank() + 1) % p;
            let prev = (c.rank() + p - 1) % p;
            c.send_val::<u64>(next, 99, round);
            let sends: Vec<Vec<u64>> = (0..p).map(|d| vec![round * 10 + d as u64]).collect();
            let got = c.alltoallv(&sends).unwrap();
            for (src, v) in got.iter().enumerate() {
                assert_eq!(v, &vec![round * 10 + c.rank() as u64], "round {round} src {src}");
            }
            let sum = c.allreduce_sum_u64(round).unwrap();
            assert_eq!(sum, round * p as u64);
            let scanned = c.scan(&[1u64], |a, b| *a += *b).unwrap();
            assert_eq!(scanned[0], c.rank() as u64 + 1);
            assert_eq!(c.recv_val::<u64>(prev, 99).unwrap(), round);
            c.barrier().unwrap();
            acc = acc.wrapping_add(sum);
        }
        acc
    });
    assert!(out.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn max_user_tag_boundary() {
    // Tags just below the reserved space must work.
    let out = Universe::run(2, |c| {
        let tag = MAX_USER_TAG - 1;
        if c.rank() == 0 {
            c.send_val::<u32>(1, tag, 7);
            0
        } else {
            c.recv_val::<u32>(0, tag).unwrap()
        }
    });
    assert_eq!(out[1], 7);
}

#[test]
fn empty_messages_everywhere() {
    let p = 5;
    Universe::run(p, |c| {
        let sends: Vec<Vec<u32>> = vec![Vec::new(); p];
        let got = c.alltoallv(&sends).unwrap();
        assert!(got.iter().all(|v| v.is_empty()));
        for dst in 0..p {
            c.send::<u64>(dst, 5, &[]);
        }
        for src in 0..p {
            assert!(c.recv::<u64>(src, 5).unwrap().is_empty());
        }
        let g = c.allgatherv::<u32>(&[]).unwrap();
        assert!(g.iter().all(|v| v.is_empty()));
    });
}

#[test]
fn many_small_universes_in_sequence() {
    // Spawn/join leak check: run 100 universes back to back.
    for i in 0..100 {
        let out = Universe::run(3, |c| c.allreduce_sum_u64(i).unwrap());
        assert_eq!(out, vec![3 * i; 3]);
    }
}

#[test]
fn reduce_with_large_vectors() {
    let p = 7;
    let len = 10_000;
    let out = Universe::run(p, |c| {
        let mine: Vec<u64> = (0..len as u64).map(|i| i + c.rank() as u64).collect();
        c.allreduce(&mine, |a, b| *a += *b).unwrap()
    });
    let rank_sum: u64 = (0..p as u64).sum();
    for v in out {
        assert_eq!(v.len(), len);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64) * p as u64 + rank_sum);
        }
    }
}

#[test]
fn grid_shift_storm() {
    use bytes::Bytes;
    use tc_mps::Grid;
    // 100 rounds of simultaneous left+up shifts on a 4x4 grid; the
    // payload tracks its visit history length.
    let out = Universe::run(16, |c| {
        let g = Grid::new(c);
        let mut a = Bytes::from(vec![c.rank() as u8]);
        let mut b = Bytes::from(vec![c.rank() as u8]);
        for _ in 0..100 {
            a = g.shift_left(a).unwrap();
            b = g.shift_up(b).unwrap();
        }
        (a[0] as usize, b[0] as usize)
    });
    for (r, (a, b)) in out.iter().enumerate() {
        let (row, col) = (r / 4, r % 4);
        // After 100 left shifts (100 % 4 == 0) blocks return home.
        assert_eq!(*a, row * 4 + col);
        assert_eq!(*b, row * 4 + col);
    }
}

#[test]
#[should_panic(expected = "terminated before sending")]
fn recv_from_finished_rank_panics_with_context() {
    Universe::run(2, |c| {
        if c.rank() == 0 {
            // Rank 1 exits without ever sending; this recv must fail
            // loudly rather than hang.
            c.recv_val::<u32>(1, 42).unwrap();
        }
    });
}

#[test]
#[should_panic(expected = "but universe has")]
fn send_to_invalid_rank_panics() {
    Universe::run(2, |c| {
        if c.rank() == 0 {
            c.send_val::<u32>(5, 1, 0);
        }
    });
}

#[test]
#[should_panic(expected = "expected exactly one element")]
fn recv_val_rejects_wrong_cardinality() {
    Universe::run(2, |c| {
        if c.rank() == 0 {
            c.send(1, 7, &[1u32, 2]);
        } else {
            let _ = c.recv_val::<u32>(0, 7);
        }
    });
}
