//! Property tests: every collective must agree with a sequential
//! reference computation for arbitrary inputs and rank counts.

use proptest::collection::vec;
use proptest::prelude::*;
use tc_mps::Universe;

/// Rank counts worth exercising: 1, primes, powers of two, squares.
fn rank_count() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 3, 4, 5, 7, 8, 9, 12, 16])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allreduce_sum_matches_reference(p in rank_count(), data in vec(0u64..1 << 40, 1..17)) {
        let contributions: Vec<Vec<u64>> = (0..p)
            .map(|r| data.iter().map(|&x| x.rotate_left(r as u32)).collect())
            .collect();
        let expect: Vec<u64> = (0..data.len())
            .map(|i| contributions.iter().map(|c| c[i]).fold(0u64, u64::wrapping_add))
            .collect();
        let out = Universe::run(p, |c| {
            c.allreduce(&contributions[c.rank()], |a, b| *a = a.wrapping_add(*b)).unwrap()
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn allreduce_max_matches_reference(p in rank_count(), seed in any::<u64>()) {
        let vals: Vec<u64> = (0..p as u64).map(|r| seed.wrapping_mul(r + 1) >> 8).collect();
        let expect = *vals.iter().max().unwrap();
        let out = Universe::run(p, |c| c.allreduce_max_u64(vals[c.rank()]).unwrap());
        for v in out {
            prop_assert_eq!(v, expect);
        }
    }

    #[test]
    fn scan_matches_sequential_prefix(p in rank_count(), seed in any::<u32>()) {
        let vals: Vec<u64> = (0..p as u64).map(|r| (seed as u64).wrapping_mul(r + 3) % 997).collect();
        let out = Universe::run(p, |c| c.scan(&[vals[c.rank()]], |a, b| *a += *b).unwrap());
        let mut acc = 0u64;
        for (r, v) in out.iter().enumerate() {
            acc += vals[r];
            prop_assert_eq!(v[0], acc);
        }
    }

    #[test]
    fn exscan_shifts_scan(p in rank_count(), seed in any::<u32>()) {
        let vals: Vec<u64> = (0..p as u64).map(|r| (seed as u64 + r) % 1000).collect();
        let out = Universe::run(p, |c| c.exscan(&[vals[c.rank()]], 0, |a, b| *a += *b).unwrap());
        let mut acc = 0u64;
        for (r, v) in out.iter().enumerate() {
            prop_assert_eq!(v[0], acc);
            acc += vals[r];
        }
    }

    #[test]
    fn alltoallv_is_a_transpose(p in rank_count(), seed in any::<u64>()) {
        // sends[s][d] payload depends on (s, d); receiving side must see
        // the transposed arrangement.
        let out = Universe::run(p, |c| {
            let sends: Vec<Vec<u64>> = (0..p)
                .map(|d| {
                    let len = ((seed >> (d % 8)) % 5) as usize;
                    vec![(c.rank() as u64) << 32 | d as u64; len]
                })
                .collect();
            c.alltoallv(&sends).unwrap()
        });
        for (d, recvd) in out.iter().enumerate() {
            for (s, part) in recvd.iter().enumerate() {
                let len = ((seed >> (d % 8)) % 5) as usize;
                prop_assert_eq!(part.len(), len);
                for &x in part {
                    prop_assert_eq!(x, (s as u64) << 32 | d as u64);
                }
            }
        }
    }

    #[test]
    fn gatherv_matches_allgatherv(p in rank_count(), root in 0usize..16) {
        let root = root % p;
        let out = Universe::run(p, |c| {
            let mine: Vec<u32> = (0..(c.rank() % 4) as u32).map(|i| i + c.rank() as u32).collect();
            let all = c.allgatherv(&mine).unwrap();
            let rooted = c.gatherv(root, &mine).unwrap();
            (all, rooted)
        });
        let reference = &out[0].0;
        for (r, (all, rooted)) in out.iter().enumerate() {
            prop_assert_eq!(all, reference);
            if r == root {
                prop_assert_eq!(rooted.as_ref().unwrap(), reference);
            } else {
                prop_assert!(rooted.is_none());
            }
        }
    }

    #[test]
    fn bcast_arbitrary_payload(p in rank_count(), payload in vec(any::<u64>(), 0..64), root in 0usize..16) {
        let root = root % p;
        let out = Universe::run(p, |c| {
            let data = if c.rank() == root { payload.clone() } else { Vec::new() };
            c.bcast(root, &data).unwrap()
        });
        for v in out {
            prop_assert_eq!(&v, &payload);
        }
    }
}
