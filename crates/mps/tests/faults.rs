//! Fault-injection tests: the runtime must never hang. A panic in any
//! phase of a Cannon-style pipeline surfaces as [`MpsError::PeerFailed`]
//! on every peer (demonstrated by the universe joining promptly), a
//! silently wedged rank surfaces as [`MpsError::Timeout`] with a
//! per-rank diagnostic report, and ranks that diverge in their
//! collective call sequence surface as
//! [`MpsError::CollectiveMismatch`].

use std::time::{Duration, Instant};

use bytes::Bytes;
use tc_mps::{Comm, Grid, MpsError, MpsResult, Universe, UniverseConfig};

/// Phases of the miniature pipeline below, in execution order
/// (`shift-*` entries assume the 3×3 grid used by the tests).
const PHASES: &[&str] = &["preprocess", "skew", "shift-0", "shift-1", "shift-2", "final-allreduce"];

/// A scaled-down version of the paper's pipeline: distribute "edges"
/// (alltoallv + allreduce), skew blocks (grid exchange), `q` rounds of
/// `shift_left`/`shift_up` with a local accumulation, and a final
/// allreduce. Panics at `fail_phase` when this rank is `fail_rank`.
fn mini_cannon(c: &Comm, fail_phase: Option<&str>, fail_rank: usize) -> MpsResult<u64> {
    let p = c.size();
    let boom = |phase: &str| {
        if fail_phase == Some(phase) && c.rank() == fail_rank {
            panic!("injected failure in {phase}");
        }
    };

    // Preprocessing stand-in: personalized exchange + global count.
    boom("preprocess");
    let sends: Vec<Vec<u64>> = (0..p).map(|d| vec![(c.rank() * p + d) as u64; 4]).collect();
    let received = c.alltoallv(&sends)?;
    let local: u64 = received.iter().map(|v| v.len() as u64).sum();
    let total = c.allreduce_sum_u64(local)?;
    assert_eq!(total, (p * p * 4) as u64);

    // Initial Cannon skew along rows.
    let g = Grid::new(c);
    let q = g.q();
    boom("skew");
    let dst_col = (g.col() + q - g.row()) % q;
    let src_col = (g.col() + g.row()) % q;
    let mut block =
        g.exchange_bytes(g.row(), dst_col, Bytes::from(vec![c.rank() as u8]), g.row(), src_col)?;

    // q shift rounds, each moving a U block left and an L block up.
    let mut partial = 0u64;
    for s in 0..q {
        boom(&format!("shift-{s}"));
        block = g.shift_left(block)?;
        let lblock = g.shift_up(Bytes::from(vec![block[0]]))?;
        partial += block[0] as u64 + lblock[0] as u64;
    }

    boom("final-allreduce");
    c.allreduce_sum_u64(partial)
}

#[test]
fn healthy_pipeline_is_deterministic() {
    let a = Universe::try_run(9, |c| mini_cannon(c, None, 0)).unwrap();
    let b = Universe::try_run(9, |c| mini_cannon(c, None, 0)).unwrap();
    assert_eq!(a, b);
    // Allreduced, so every rank reports the same total.
    assert!(a.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn panic_at_every_phase_unblocks_all_peers() {
    let p = 9;
    // A short deadline bounds the damage if propagation were broken:
    // the elapsed-time assertion below would then see ~10 s, not 60 s.
    let cfg = UniverseConfig::with_timeout(Duration::from_secs(10));
    for (i, phase) in PHASES.iter().enumerate() {
        let fail_rank = i % p;
        let t0 = Instant::now();
        let err = Universe::try_run_config(p, &cfg, |c| mini_cannon(c, Some(phase), fail_rank))
            .unwrap_err();
        // try_run only returns once every rank has been joined, so a
        // prompt return proves all peers were unblocked.
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "phase {phase}: universe took {:?} to unwind",
            t0.elapsed()
        );
        match err {
            MpsError::PeerFailed { rank, msg } => {
                assert_eq!(rank, fail_rank, "phase {phase}");
                assert!(
                    msg.contains(&format!("injected failure in {phase}")),
                    "phase {phase}: unexpected message {msg:?}"
                );
            }
            other => panic!("phase {phase}: expected PeerFailed, got {other}"),
        }
    }
}

#[test]
fn wedged_rank_surfaces_as_timeout_with_report() {
    // Rank 3 neither crashes nor participates — the failure mode a
    // hung remote process would show. Peers must give up at the
    // deadline and the report must cover every rank.
    let cfg = UniverseConfig::with_timeout(Duration::from_millis(300));
    let t0 = Instant::now();
    let err = Universe::try_run_config(4, &cfg, |c| {
        if c.rank() == 3 {
            std::thread::sleep(Duration::from_millis(1200));
            return Ok(0);
        }
        c.allreduce_sum_u64(1)
    })
    .unwrap_err();
    assert!(t0.elapsed() < Duration::from_secs(5));
    match err {
        MpsError::Timeout { report, .. } => {
            for r in 0..4 {
                assert!(report.contains(&format!("rank {r}:")), "missing rank {r} in:\n{report}");
            }
            assert!(report.contains("blocked in"), "no blocked-op line in:\n{report}");
        }
        other => panic!("expected Timeout, got {other}"),
    }
}

#[test]
fn diverged_collective_sequence_is_reported() {
    // Rank 0 enters a barrier while rank 1 enters an allreduce: a
    // textbook collective mismatch. Must abort with a report naming
    // both operations, not hang or decode garbage.
    let err = Universe::try_run(2, |c| {
        if c.rank() == 0 {
            c.barrier()?;
            Ok(0)
        } else {
            c.allreduce_sum_u64(1)
        }
    })
    .unwrap_err();
    match err {
        MpsError::CollectiveMismatch { expected, got, .. } => {
            assert!(expected.contains("barrier"), "{expected}");
            assert!(got.contains("reduce"), "{got}");
        }
        other => panic!("expected CollectiveMismatch, got {other}"),
    }
}

#[cfg(debug_assertions)]
#[test]
fn mismatched_payload_type_is_reported() {
    // Same collective, different element types: the tags agree, so
    // only the debug-build payload stamp can catch this.
    let err = Universe::try_run(2, |c| {
        if c.rank() == 0 {
            Ok(c.allreduce(&[1u32], |a, b| *a += *b)?[0] as u64)
        } else {
            Ok(c.allreduce(&[1u64], |a, b| *a += *b)?[0])
        }
    })
    .unwrap_err();
    match err {
        MpsError::CollectiveMismatch { expected, got, .. } => {
            assert!(expected.contains("4-byte"), "{expected}");
            assert!(got.contains("8-byte"), "{got}");
        }
        other => panic!("expected CollectiveMismatch, got {other}"),
    }
}

#[test]
fn peer_panic_fails_outstanding_irecv() {
    // Rank 0 posts an irecv and computes before waiting (the
    // overlapped-shift pattern); its peer dies in the overlap window.
    // The wait must surface PeerFailed promptly, not run out the clock.
    let cfg = UniverseConfig::with_timeout(Duration::from_secs(10));
    let t0 = Instant::now();
    let err = Universe::try_run_config(2, &cfg, |c| {
        if c.rank() == 0 {
            let req = c.irecv_bytes(1, 7);
            req.wait().map(|b| b.len() as u64)
        } else {
            panic!("injected failure with a request in flight");
        }
    })
    .unwrap_err();
    assert!(t0.elapsed() < Duration::from_secs(5), "unwind took {:?}", t0.elapsed());
    match err {
        MpsError::PeerFailed { rank, msg } => {
            assert_eq!(rank, 1);
            assert!(msg.contains("request in flight"), "{msg}");
        }
        other => panic!("expected PeerFailed, got {other}"),
    }
}

#[test]
fn irecv_wait_times_out_with_report() {
    // The deadline applies to the wait, and the blocked-op line in the
    // diagnostic dump names the nonblocking receive.
    let cfg = UniverseConfig::with_timeout(Duration::from_millis(300));
    let err = Universe::try_run_config(2, &cfg, |c| {
        if c.rank() == 0 {
            let req = c.irecv_bytes(1, 9);
            req.wait().map(|b| b.len() as u64)
        } else {
            // Stays alive (so no fail-fast on termination) but never
            // sends — the wedged-peer case for a posted receive.
            std::thread::sleep(Duration::from_millis(1200));
            Ok(0)
        }
    })
    .unwrap_err();
    let text = err.to_string();
    match err {
        MpsError::Timeout { op, report, .. } => {
            assert_eq!(op, "irecv");
            // The dump covers every rank (the waiter has already
            // cleared its own blocked slot when it reports).
            assert!(report.contains("rank 0:") && report.contains("rank 1:"), "{report}");
            assert!(text.contains("irecv"), "op missing from rendering: {text}");
        }
        other => panic!("expected Timeout, got {other}"),
    }
}

#[test]
fn unwaited_request_parks_harmlessly() {
    // Dropping a request without waiting leaves its packet parked
    // under a unique tag; later traffic and collectives on the same
    // channel must be unaffected.
    let out = Universe::try_run(4, |c| {
        let g = Grid::new(c);
        let dropped = g.shift_left_start(Bytes::from(vec![c.rank() as u8]));
        drop(dropped);
        let followup = g.shift_left(Bytes::from(vec![c.rank() as u8 + 10]))?;
        let sum = c.allreduce_sum_u64(followup[0] as u64)?;
        Ok(sum)
    })
    .unwrap();
    // Every rank received its right neighbour's follow-up payload.
    assert!(out.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(out[0], (0..4).sum::<u64>() + 4 * 10);
}

#[test]
fn collective_mismatch_with_outstanding_request_is_detected() {
    // A rank diverging into the wrong collective while another has an
    // un-waited request posted: mismatch detection must still win.
    let err = Universe::try_run(2, |c| {
        if c.rank() == 0 {
            let _pending = c.irecv_bytes(1, 11);
            c.barrier()?;
            Ok(0)
        } else {
            c.allreduce_sum_u64(1)
        }
    })
    .unwrap_err();
    match err {
        MpsError::CollectiveMismatch { expected, got, .. } => {
            assert!(expected.contains("barrier") || got.contains("barrier"), "{expected} / {got}");
        }
        other => panic!("expected CollectiveMismatch, got {other}"),
    }
}

#[test]
fn failure_in_one_universe_does_not_poison_the_next() {
    for round in 0..3 {
        let err = Universe::try_run(4, |c| mini_cannon(c, Some("shift-1"), round % 4)).unwrap_err();
        assert!(matches!(err, MpsError::PeerFailed { .. }));
        let ok = Universe::try_run(4, |c| mini_cannon(c, None, 0)).unwrap();
        assert!(ok.windows(2).all(|w| w[0] == w[1]));
    }
}

#[test]
fn error_display_is_informative() {
    let cfg = UniverseConfig::with_timeout(Duration::from_millis(200));
    let err = Universe::try_run_config(2, &cfg, |c| {
        let peer = 1 - c.rank();
        c.recv_val::<u64>(peer, 7)
    })
    .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("timed out"), "{text}");
    assert!(text.contains("tag 0x7"), "{text}");
}
