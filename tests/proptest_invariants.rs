//! Property-based tests over random graphs: the master correctness
//! invariant (all implementations agree), plus structural invariants
//! of the pipeline stages.

use proptest::collection::vec;
use proptest::prelude::*;
use tc_baselines::serial;
use tc_baselines::{count_aop1d, count_push1d, count_shared, count_wedge};
use tc_core::{count_triangles, count_triangles_default, Enumeration, TcConfig};
use tc_graph::{degree, Csr, EdgeList};

/// Arbitrary simple graphs: up to ~60 vertices, arbitrary edge picks
/// (duplicates and self loops generated on purpose — `simplify` must
/// handle them).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..60).prop_flat_map(|n| {
        vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |edges| EdgeList::new(n, edges).simplify())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn distributed_2d_matches_serial(el in arb_graph(), p in prop::sample::select(vec![1usize, 4, 9, 16])) {
        let expect = serial::count_default(&el);
        prop_assert_eq!(count_triangles_default(&el, p).triangles, expect);
    }

    #[test]
    fn all_2d_configs_match(el in arb_graph()) {
        let expect = serial::count_default(&el);
        let cfgs = [
            TcConfig::paper(),
            TcConfig::unoptimized(),
            TcConfig::paper().with_enumeration(Enumeration::Ijk),
            TcConfig::paper().with_direct_hash(false),
        ];
        for cfg in &cfgs {
            prop_assert_eq!(count_triangles(&el, 9, cfg).triangles, expect);
        }
    }

    #[test]
    fn baselines_match_serial(el in arb_graph(), p in 1usize..6) {
        let expect = serial::count_default(&el);
        prop_assert_eq!(count_aop1d(&el, p).triangles, expect);
        prop_assert_eq!(count_push1d(&el, p).triangles, expect);
        prop_assert_eq!(count_wedge(&el, p).triangles, expect);
        prop_assert_eq!(count_shared(&el, 3), expect);
    }

    #[test]
    fn serial_variants_agree(el in arb_graph()) {
        use serial::{count, Enumeration as E, Intersection as I};
        let reference = count(&el, E::Ijk, I::List);
        prop_assert_eq!(count(&el, E::Ijk, I::Map), reference);
        prop_assert_eq!(count(&el, E::Jik, I::List), reference);
        prop_assert_eq!(count(&el, E::Jik, I::Map), reference);
    }

    #[test]
    fn triangle_count_bounded_by_wedges(el in arb_graph()) {
        let csr = Csr::from_edge_list(&el);
        let triangles = serial::count_default(&el);
        // Each triangle closes three wedges.
        prop_assert!(3 * triangles <= tc_graph::stats::total_wedges(&csr));
    }

    #[test]
    fn degree_relabel_preserves_count(el in arb_graph()) {
        let expect = serial::count_default(&el);
        let (relabeled, _) = degree::relabel_by_degree(el);
        prop_assert_eq!(serial::count_default(&relabeled), expect);
    }

    #[test]
    fn per_vertex_counts_sum_to_three_times_total(el in arb_graph()) {
        let (total, per) = serial::per_vertex_counts(&el);
        prop_assert_eq!(per.iter().sum::<u64>(), 3 * total);
    }

    #[test]
    fn adding_an_edge_never_decreases_triangles(el in arb_graph(), a in 0u32..60, b in 0u32..60) {
        let n = el.num_vertices as u32;
        prop_assume!(n >= 2);
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let before = serial::count_default(&el);
        let mut edges = el.edges.clone();
        edges.push((a.min(b), a.max(b)));
        let after = serial::count_default(&EdgeList::new(el.num_vertices, edges).simplify());
        prop_assert!(after >= before);
    }
}
