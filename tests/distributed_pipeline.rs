//! Integration tests of the full distributed pipeline: metrics
//! consistency, I/O → count workflows, determinism, and the
//! qualitative behaviours the paper's evaluation reports.

use tc_core::{count_triangles, count_triangles_default, TcConfig};
use tc_gen::{graph500, Preset};
use tc_graph::io;

#[test]
fn determinism_across_repeated_runs() {
    let el = graph500(10, 4).simplify();
    let a = count_triangles_default(&el, 9);
    let b = count_triangles_default(&el, 9);
    assert_eq!(a.triangles, b.triangles);
    // Structural metrics (not wall times) must be bit-identical.
    assert_eq!(a.total_tasks(), b.total_tasks());
    assert_eq!(a.total_lookups(), b.total_lookups());
    assert_eq!(a.total_bytes_sent(), b.total_bytes_sent());
    for (ma, mb) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(ma.local_triangles, mb.local_triangles);
        assert_eq!(ma.tasks, mb.tasks);
    }
}

#[test]
fn io_roundtrip_feeds_distributed_count() {
    let el = graph500(9, 8).simplify();
    let dir = std::env::temp_dir().join(format!("tc-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.bin");
    io::write_binary_edges_path(&el, &path).unwrap();
    let back = io::read_binary_edges_path(&path).unwrap();
    assert_eq!(back, el);
    let r = count_triangles_default(&back, 4);
    assert_eq!(r.triangles, tc_baselines::serial::count_default(&el));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn matrix_market_to_count() {
    // A K4 as a symmetric Matrix Market pattern.
    let mm = "%%MatrixMarket matrix coordinate pattern symmetric\n\
              4 4 6\n2 1\n3 1\n4 1\n3 2\n4 2\n4 3\n";
    let el = io::read_matrix_market(mm.as_bytes()).unwrap().simplify();
    let r = count_triangles_default(&el, 4);
    assert_eq!(r.triangles, 4);
}

#[test]
fn local_counts_partition_the_total() {
    let el = Preset::TwitterLike { scale: 9 }.build(5);
    for p in [4usize, 16, 25] {
        let r = count_triangles_default(&el, p);
        let sum: u64 = r.ranks.iter().map(|m| m.local_triangles).sum();
        assert_eq!(sum, r.triangles, "p={p}");
    }
}

#[test]
fn probe_rate_reflects_graph_shape() {
    // §7.1: twitter has ~68 % more probes than friendster. The same
    // qualitative ordering must hold for the stand-ins: the skewed
    // graph performs more lookups per edge than the uniform one.
    let tw = Preset::TwitterLike { scale: 10 }.build(6);
    let fr = Preset::FriendsterLike { scale: 10 }.build(6);
    let rt = count_triangles_default(&tw, 16);
    let rf = count_triangles_default(&fr, 16);
    let per_edge_t = rt.total_lookups() as f64 / tw.num_edges() as f64;
    let per_edge_f = rf.total_lookups() as f64 / fr.num_edges() as f64;
    assert!(
        per_edge_t > per_edge_f,
        "lookups/edge: twitter-like {per_edge_t:.2} <= friendster-like {per_edge_f:.2}"
    );
}

#[test]
fn task_counts_grow_with_grid_like_table4() {
    let el = graph500(11, 9).simplify();
    let t16 = count_triangles_default(&el, 16).total_tasks();
    let t25 = count_triangles_default(&el, 25).total_tasks();
    let t36 = count_triangles_default(&el, 36).total_tasks();
    assert!(t25 >= t16, "16→25: {t16} → {t25}");
    assert!(t36 >= t25, "25→36: {t25} → {t36}");
}

#[test]
fn direct_hash_rows_dominate_when_enabled() {
    // The 2D blocks are sparse, so most rows should take the
    // collision-free fast path — that's the premise of the §5.2
    // optimization.
    let el = graph500(10, 3).simplify();
    let r = count_triangles(&el, 16, &TcConfig::paper());
    let direct: u64 = r.ranks.iter().map(|m| m.direct_rows).sum();
    let probed: u64 = r.ranks.iter().map(|m| m.probed_rows).sum();
    assert!(direct > probed, "direct {direct} <= probed {probed}");

    let r2 = count_triangles(&el, 16, &TcConfig::paper().with_direct_hash(false));
    let direct2: u64 = r2.ranks.iter().map(|m| m.direct_rows).sum();
    assert_eq!(direct2, 0);
}

#[test]
fn early_break_reduces_lookups() {
    let el = graph500(10, 3).simplify();
    let with = count_triangles(&el, 9, &TcConfig::paper());
    let without = count_triangles(&el, 9, &TcConfig::paper().with_reverse_early_break(false));
    assert_eq!(with.triangles, without.triangles);
    assert!(
        with.total_lookups() < without.total_lookups(),
        "early break did not reduce lookups: {} vs {}",
        with.total_lookups(),
        without.total_lookups()
    );
}

#[test]
fn communication_volume_grows_with_ranks() {
    // More ranks → more block fragmentation → more total bytes on the
    // wire (the paper's Fig. 3 driver).
    let el = graph500(10, 2).simplify();
    let b4 = count_triangles_default(&el, 4).total_bytes_sent();
    let b25 = count_triangles_default(&el, 25).total_bytes_sent();
    assert!(b25 > b4, "bytes: p=4 {b4} >= p=25 {b25}");
}
