//! End-to-end seeded-regression demonstration for `benchdiff`: two
//! real 5-try pipeline runs produce `tc-run-v2` reports through the
//! bench harness (`RunScope`), an identical-run diff passes, seeded
//! perturbations — a drifted deterministic counter, a genuine 2×
//! slowdown judged by effect size — flip the verdict to FAIL, a
//! noisy-but-equal pair passes where the old fixed band would have
//! failed, and a `tc-run-v1` baseline still diffs against a v2
//! candidate.

use tc_bench::args::ExpArgs;
use tc_bench::RunScope;
use tc_metrics::diff::{diff_reports, DiffOptions};
use tc_metrics::{RunRecord, TimingStats};

fn report(dir: &std::path::Path, name: &str, el: &tc_graph::EdgeList) -> Vec<RunRecord> {
    let path = dir.join(name);
    let args = ExpArgs {
        json: Some(path.to_string_lossy().into_owned()),
        tries: 5,
        warmup: 1,
        ..ExpArgs::default()
    };
    let rs = RunScope::new(&args, None, "rmat-s8");
    let r = rs.count_2d_default(el, 4);
    assert!(r.triangles > 0, "reference graph should contain triangles");
    let text = std::fs::read_to_string(&path).expect("report written");
    assert!(text.contains("\"schema\":\"tc-run-v2\""), "harness emits v2 records: {text}");
    RunRecord::parse_jsonl(&text).expect("report parses")
}

/// Serializes a record the way the pre-stats harness did: same run
/// key and counters, but `tc-run-v1` schema with bare-integer (median)
/// timings.
fn v1_line(rec: &RunRecord) -> String {
    let mut out = format!(
        "{{\"schema\":\"tc-run-v1\",\"dataset\":\"{}\",\"algorithm\":\"{}\",\"ranks\":{},\
         \"config\":\"{}\",\"triangles\":{},\"counters\":{{",
        rec.dataset, rec.algorithm, rec.ranks, rec.config, rec.triangles
    );
    for (i, (k, v)) in rec.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push_str("},\"timings_ns\":{");
    for (i, (k, s)) in rec.timings_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{}", s.median));
    }
    out.push_str("}}");
    out
}

#[test]
fn five_try_runs_pass_and_seeded_regressions_fail() {
    let el = tc_gen::rmat(8, 8, tc_gen::RmatParams::GRAPH500, 7).simplify();
    let dir = std::env::temp_dir().join(format!("tc_benchdiff_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let base = report(&dir, "base.jsonl", &el);
    let cand = report(&dir, "cand.jsonl", &el);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(base.len(), 1, "five tries aggregate into one record");
    assert_eq!(base[0].key(), cand[0].key(), "same run key across repeats");
    for s in base[0].timings_ns.values() {
        assert_eq!(s.tries, 5, "timings summarize all measured tries");
    }

    // Generous effect thresholds: this part of the test is about
    // determinism, the runs are tiny and wall-clock noise on CI is
    // unbounded — two honest re-runs may genuinely differ.
    let noise_proof =
        DiffOptions { tolerance: 1000.0, min_effect: 1000.0, ..DiffOptions::default() };
    let rep = diff_reports(&base, &cand, &noise_proof);
    assert!(rep.pass(), "identical pipeline runs must pass:\n{}", rep.render());

    // Seeded regression 1: one deterministic counter drifts by 1.
    // The hard gate is exact — no amount of tolerance forgives it.
    let mut perturbed = cand.clone();
    let (name, v) = {
        let (name, v) = perturbed[0].counters.iter().next().expect("counters recorded");
        (name.clone(), *v)
    };
    perturbed[0].counters.insert(name, v + 1);
    assert!(
        !diff_reports(&base, &perturbed, &noise_proof).pass(),
        "a drifted deterministic counter must fail the diff"
    );

    // Seeded regression 2: a genuine 2× slowdown at 5 tries, judged
    // by effect size under the default options. The timing spread is
    // seeded so the verdict is deterministic on any machine.
    let timing = base[0].timings_ns.keys().next().expect("timings recorded").clone();
    let ms = |v: &[u64]| -> Vec<u64> { v.iter().map(|&x| x * 1_000_000).collect() };
    let mut steady = base.clone();
    steady[0]
        .timings_ns
        .insert(timing.clone(), TimingStats::from_samples(&ms(&[98, 99, 100, 101, 102])).unwrap());
    let mut doubled = steady.clone();
    doubled[0].timings_ns.insert(
        timing.clone(),
        TimingStats::from_samples(&ms(&[196, 198, 200, 202, 204])).unwrap(),
    );
    let defaults = DiffOptions::default();
    let rep = diff_reports(&steady, &doubled, &defaults);
    assert!(!rep.pass(), "a seeded 2x slowdown must fail by effect size:\n{}", rep.render());
    let rep = diff_reports(&steady, &steady.clone(), &defaults);
    assert!(rep.pass(), "the unperturbed re-run must pass:\n{}", rep.render());

    // Noisy-but-equal: +30% mean shift swamped by spread. The old
    // fixed ±25% band would have failed this; the effect-size verdict
    // recognizes the overlap and passes.
    let mut noisy_base = base.clone();
    noisy_base[0]
        .timings_ns
        .insert(timing.clone(), TimingStats::from_samples(&ms(&[70, 85, 100, 115, 130])).unwrap());
    let mut noisy_cand = base.clone();
    noisy_cand[0].timings_ns.insert(
        timing.clone(),
        TimingStats::from_samples(&ms(&[100, 115, 130, 145, 160])).unwrap(),
    );
    let rep = diff_reports(&noisy_base, &noisy_cand, &defaults);
    assert!(rep.pass(), "a noisy-but-equal pair must pass under effect size:\n{}", rep.render());

    // Backward compatibility: a v1 baseline (single-shot timings)
    // diffs against the v2 candidate via the tolerance fallback.
    let v1 = RunRecord::parse_jsonl(&v1_line(&base[0])).expect("v1 line parses");
    assert_eq!(v1.len(), 1);
    assert_eq!(v1[0].timings_ns.values().next().map(|s| s.tries), Some(1));
    let rep = diff_reports(&v1, &cand, &noise_proof);
    assert!(rep.pass(), "v1 baseline must diff against v2 candidate:\n{}", rep.render());
}
