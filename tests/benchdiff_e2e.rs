//! End-to-end seeded-regression demonstration for `benchdiff`: two
//! real pipeline runs produce JSON-lines reports through the bench
//! harness (`RunScope`), an identical-run diff passes, and a seeded
//! perturbation — one deterministic counter nudged, one timing
//! inflated beyond tolerance — flips the verdict to FAIL.

use tc_bench::args::ExpArgs;
use tc_bench::RunScope;
use tc_metrics::diff::{diff_reports, DiffOptions};
use tc_metrics::RunRecord;

fn report(dir: &std::path::Path, name: &str, el: &tc_graph::EdgeList) -> Vec<RunRecord> {
    let path = dir.join(name);
    let args = ExpArgs { json: Some(path.to_string_lossy().into_owned()), ..ExpArgs::default() };
    let rs = RunScope::new(&args, None, "rmat-s8");
    let r = rs.count_2d_default(el, 4);
    assert!(r.triangles > 0, "reference graph should contain triangles");
    let text = std::fs::read_to_string(&path).expect("report written");
    RunRecord::parse_jsonl(&text).expect("report parses")
}

#[test]
fn identical_runs_pass_and_seeded_regressions_fail() {
    let el = tc_gen::rmat(8, 8, tc_gen::RmatParams::GRAPH500, 7).simplify();
    let dir = std::env::temp_dir().join(format!("tc_benchdiff_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let base = report(&dir, "base.jsonl", &el);
    let cand = report(&dir, "cand.jsonl", &el);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(base.len(), 1);
    assert_eq!(base[0].key(), cand[0].key(), "same run key across repeats");

    // Generous timing tolerance: this test is about determinism, the
    // runs are tiny and wall-clock noise on CI is unbounded.
    let opts = DiffOptions { tolerance: 1000.0, ..DiffOptions::default() };
    let report = diff_reports(&base, &cand, &opts);
    assert!(report.pass(), "identical pipeline runs must pass:\n{}", report.render());

    // Seeded regression 1: one deterministic counter drifts by 1.
    let mut perturbed = cand.clone();
    let (name, v) = {
        let (name, v) = perturbed[0].counters.iter().next().expect("counters recorded");
        (name.clone(), *v)
    };
    perturbed[0].counters.insert(name, v + 1);
    assert!(
        !diff_reports(&base, &perturbed, &opts).pass(),
        "a drifted deterministic counter must fail the diff"
    );

    // Seeded regression 2: one timing inflated far beyond tolerance.
    let mut slow = cand.clone();
    let (name, v) = {
        let (name, v) = slow[0].timings_ns.iter().next().expect("timings recorded");
        (name.clone(), *v)
    };
    slow[0].timings_ns.insert(name, v.saturating_mul(1_000_000).max(u64::MAX / 2));
    let opts = DiffOptions { tolerance: 0.25, ..DiffOptions::default() };
    assert!(!diff_reports(&base, &slow, &opts).pass(), "an inflated timing must fail the diff");
}
