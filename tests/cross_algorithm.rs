//! Cross-algorithm agreement: every triangle-counting implementation
//! in the workspace — serial (4 variants), shared-memory, the 2D
//! algorithm (all configurations), and the four distributed baselines
//! — must produce identical counts on identical graphs.

use tc_baselines::serial::{count, count_default, Enumeration, Intersection};
use tc_baselines::{count_aop1d, count_psp1d, count_push1d, count_shared, count_wedge};
use tc_core::count_triangles_default;
use tc_gen::{graph500, Preset};
use tc_graph::EdgeList;

fn check_everything(el: &EdgeList, label: &str) {
    let expect = count_default(el);
    // Serial variants.
    for (e, m) in [
        (Enumeration::Ijk, Intersection::List),
        (Enumeration::Ijk, Intersection::Map),
        (Enumeration::Jik, Intersection::List),
        (Enumeration::Jik, Intersection::Map),
    ] {
        assert_eq!(count(el, e, m), expect, "{label}: serial {e:?}/{m:?}");
    }
    // Shared-memory.
    assert_eq!(count_shared(el, 4), expect, "{label}: shared");
    // 2D distributed.
    for p in [1, 4, 9, 16] {
        assert_eq!(count_triangles_default(el, p).triangles, expect, "{label}: 2d p={p}");
    }
    // 1D distributed baselines.
    for p in [1, 3, 5] {
        assert_eq!(count_aop1d(el, p).triangles, expect, "{label}: aop p={p}");
        assert_eq!(count_push1d(el, p).triangles, expect, "{label}: push p={p}");
        assert_eq!(count_psp1d(el, p, 4).triangles, expect, "{label}: psp p={p}");
        assert_eq!(count_wedge(el, p).triangles, expect, "{label}: wedge p={p}");
    }
}

#[test]
fn g500_small() {
    check_everything(&graph500(8, 1).simplify(), "g500-s8");
}

#[test]
fn twitter_like_preset() {
    check_everything(&Preset::TwitterLike { scale: 9 }.build(2), "twitter-like-9");
}

#[test]
fn friendster_like_preset() {
    check_everything(&Preset::FriendsterLike { scale: 9 }.build(3), "friendster-like-9");
}

#[test]
fn pathological_structures() {
    // Complete graph K10: C(10,3) = 120.
    let mut edges = Vec::new();
    for u in 0..10u32 {
        for v in u + 1..10 {
            edges.push((u, v));
        }
    }
    let k10 = EdgeList::new(10, edges).simplify();
    assert_eq!(count_default(&k10), 120);
    check_everything(&k10, "K10");

    // Star (no triangles) with a far-away triangle appended.
    let mut edges: Vec<(u32, u32)> = (1..30u32).map(|v| (0, v)).collect();
    edges.extend([(30, 31), (30, 32), (31, 32)]);
    let star_plus = EdgeList::new(33, edges).simplify();
    assert_eq!(count_default(&star_plus), 1);
    check_everything(&star_plus, "star+triangle");
}

#[test]
fn disconnected_components() {
    // Three disjoint triangles spread far apart in the id space.
    let edges = vec![
        (0, 1),
        (0, 2),
        (1, 2),
        (100, 101),
        (100, 102),
        (101, 102),
        (200, 201),
        (200, 202),
        (201, 202),
    ];
    let el = EdgeList::new(203, edges).simplify();
    assert_eq!(count_default(&el), 3);
    check_everything(&el, "three-triangles");
}
